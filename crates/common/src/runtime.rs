//! The unified stage runtime: one scheduler for every pipeline loop.
//!
//! Every background activity in the system — redo shipping, standby
//! ingest/merge, per-worker redo apply, QuerySCN advancement, IMCU
//! population, RAC invalidation endpoints, even the workload driver's
//! client ticks — is a [`Stage`]: a struct with a synchronous
//! [`Stage::run_once`] returning [`StageOutcome`]. Stages register with a
//! [`Runtime`], which owns wake wiring, panic/error capture, and graceful
//! drain-then-stop shutdown, and can be driven by either of two
//! interchangeable schedulers:
//!
//! * [`ThreadedRuntime`] ([`Runtime::start_threaded`]) — one thread per
//!   stage. Idle stages park on a [`WakeToken`] condvar; producers wake
//!   their consumers (shipper → merger, dispatcher → workers, workers →
//!   coordinator, flush → population), replacing every fixed
//!   `sleep(500µs..5ms)` poll loop with event-driven wakeups. A park hint
//!   bounds the wait for stages with timer-like duties (heartbeats,
//!   pacing).
//! * [`StepScheduler`] ([`Runtime::into_step`]) — drives all registered
//!   stages on the caller's thread, choosing the interleaving from a
//!   seeded RNG. The same seed reproduces the same interleaving exactly,
//!   which is what makes seeded-interleaving stress testing of the
//!   pipeline invariants (P1/P2/P5) possible.
//!
//! A panic or `Err` in any stage no longer vanishes into a detached
//! thread: the runtime records it in a shared [`HealthState`], stops the
//! pipeline deterministically, and the failure surfaces through
//! `StandbyStatus`/`MetricsSnapshot`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::metrics::StageRuntimeMetrics;

// ---------------------------------------------------------------------------
// Stage contract
// ---------------------------------------------------------------------------

/// What one run quantum of a stage accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOutcome {
    /// Work was done; schedule the stage again immediately.
    Progress,
    /// Nothing to do; park until a producer wakes the stage (or its
    /// [`Stage::park_hint`] elapses).
    Idle,
    /// The stage has finished its lifetime (e.g. a workload client past
    /// its deadline); deschedule it.
    Shutdown,
}

/// One pipeline stage: a synchronous run quantum plus scheduling hints.
///
/// Implementations use interior mutability (the pipeline structs already
/// do); `run_once` must be bounded — drain a batch, not the world — so the
/// scheduler can interleave stages and honour shutdown promptly.
pub trait Stage: Send + Sync {
    /// Stage identity. Aligns with the [`crate::MetricsRegistry`] stage ids
    /// (`transport`, `merger`, `apply.N`, `flush`, `population.N`, …) so
    /// runtime observability lands next to the stage's own counters.
    fn name(&self) -> &str;

    /// Run one bounded quantum.
    fn run_once(&self) -> Result<StageOutcome>;

    /// Upper bound on how long the stage may stay parked when idle. Acts
    /// as the fallback for missed wakeups and as the timer for stages with
    /// periodic duties (shipper heartbeats, paced clients).
    fn park_hint(&self) -> Duration {
        Duration::from_millis(1)
    }

    /// Minimum pause after a `Progress` quantum (threaded scheduler only).
    /// Background stages that must not starve foreground work (IMCU
    /// population, paper §II.B) yield here; `None` reschedules immediately.
    fn throttle(&self) -> Option<Duration> {
        None
    }

    /// Whether upstream input is waiting for this stage right now. `None`
    /// (the default) opts out of stall detection; `Some(true)` while the
    /// stage keeps reporting [`StageOutcome::Idle`] for
    /// [`STALL_IDLE_QUANTA`] consecutive quanta raises a one-shot
    /// [`StallWarning`] in the health state — input exists but the stage
    /// isn't consuming it.
    fn input_pending(&self) -> Option<bool> {
        None
    }
}

/// Consecutive idle quanta with input pending before a stage is flagged as
/// stalled. High enough that bounded internal back-off (e.g. the reliable
/// transport's NAK retry polls) never trips it.
pub const STALL_IDLE_QUANTA: u64 = 64;

// ---------------------------------------------------------------------------
// Wake tokens
// ---------------------------------------------------------------------------

#[derive(Default)]
struct WakeInner {
    pending: Mutex<bool>,
    cv: Condvar,
}

/// A wake token: producers call [`WakeToken::wake`] to unpark the consumer
/// stage parked on it. Cloneable and cheap; a wake delivered while the
/// consumer is running is latched and consumed by the next park (no lost
/// wakeups).
#[derive(Clone, Default)]
pub struct WakeToken {
    inner: Arc<WakeInner>,
}

impl WakeToken {
    /// A fresh token with no pending wake.
    pub fn new() -> WakeToken {
        WakeToken::default()
    }

    /// Wake the stage parked on this token (or latch the wake for its next
    /// park).
    pub fn wake(&self) {
        let mut pending = self.inner.pending.lock().expect("wake token poisoned");
        *pending = true;
        drop(pending);
        self.inner.cv.notify_all();
    }

    /// Park until woken or `timeout` elapses. Returns `true` when the park
    /// ended because of an explicit wake.
    pub fn park(&self, timeout: Duration) -> bool {
        let mut pending = self.inner.pending.lock().expect("wake token poisoned");
        if !*pending {
            let (guard, _timed_out) =
                self.inner.cv.wait_timeout(pending, timeout).expect("wake token poisoned");
            pending = guard;
        }
        std::mem::take(&mut pending)
    }
}

impl std::fmt::Debug for WakeToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WakeToken")
    }
}

// ---------------------------------------------------------------------------
// Health
// ---------------------------------------------------------------------------

/// The first failure recorded by a pipeline stage.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageFailure {
    /// Name of the failing stage.
    pub stage: String,
    /// The error message or panic payload.
    pub reason: String,
}

/// Pipeline health as surfaced by `StandbyStatus` and `MetricsSnapshot`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum RuntimeHealth {
    /// No stage has failed.
    #[default]
    Healthy,
    /// A stage returned `Err` or panicked; the pipeline was stopped.
    Failed(StageFailure),
}

impl RuntimeHealth {
    /// True when no failure has been recorded.
    pub fn is_healthy(&self) -> bool {
        matches!(self, RuntimeHealth::Healthy)
    }

    /// The failure, if any.
    pub fn failure(&self) -> Option<&StageFailure> {
        match self {
            RuntimeHealth::Healthy => None,
            RuntimeHealth::Failed(f) => Some(f),
        }
    }
}

impl std::fmt::Display for RuntimeHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeHealth::Healthy => f.write_str("ok"),
            RuntimeHealth::Failed(e) => write!(f, "FAILED[{}]: {}", e.stage, e.reason),
        }
    }
}

/// A stall warning: a stage sat idle for [`STALL_IDLE_QUANTA`] consecutive
/// quanta while its input queue reported pending work. Unlike a
/// [`StageFailure`] this does not stop the pipeline — it flags a wedged or
/// starved stage for the operator.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallWarning {
    /// Name of the stalled stage.
    pub stage: String,
    /// Idle quanta observed when the warning fired.
    pub idle_quanta: u64,
}

/// Shared health cell written by the schedulers, read by status/metrics
/// projections. First failure wins; later ones are dropped.
#[derive(Debug, Default)]
pub struct HealthState {
    inner: parking_lot::Mutex<RuntimeHealth>,
    stalls: parking_lot::Mutex<Vec<StallWarning>>,
}

impl HealthState {
    /// A healthy cell.
    pub fn new() -> HealthState {
        HealthState::default()
    }

    /// The current health.
    pub fn get(&self) -> RuntimeHealth {
        self.inner.lock().clone()
    }

    /// True when no failure has been recorded.
    pub fn is_healthy(&self) -> bool {
        self.inner.lock().is_healthy()
    }

    /// Record a stage failure (first failure wins).
    pub fn record(&self, stage: &str, reason: impl Into<String>) {
        let mut h = self.inner.lock();
        if h.is_healthy() {
            *h = RuntimeHealth::Failed(StageFailure {
                stage: stage.to_string(),
                reason: reason.into(),
            });
        }
    }

    /// Record a stall warning for `stage` (one warning per stage; repeats
    /// are dropped). Does not change [`RuntimeHealth`].
    pub fn record_stall(&self, stage: &str, idle_quanta: u64) {
        let mut stalls = self.stalls.lock();
        if stalls.iter().all(|s| s.stage != stage) {
            stalls.push(StallWarning { stage: stage.to_string(), idle_quanta });
        }
    }

    /// Stall warnings recorded so far, in detection order.
    pub fn stalls(&self) -> Vec<StallWarning> {
        self.stalls.lock().clone()
    }

    /// Map a recorded failure to an [`Error`], for callers that need a
    /// `Result` out of a scheduler run.
    pub fn to_result(&self) -> Result<()> {
        match self.get() {
            RuntimeHealth::Healthy => Ok(()),
            RuntimeHealth::Failed(f) => {
                Err(Error::StageFailed { stage: f.stage, reason: f.reason })
            }
        }
    }
}

fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Runtime (registration + wiring)
// ---------------------------------------------------------------------------

/// Handle to a registered stage, used for wake wiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageId(usize);

struct StageEntry {
    stage: Arc<dyn Stage>,
    token: WakeToken,
    metrics: Arc<StageRuntimeMetrics>,
    health: Arc<HealthState>,
    /// The runtime-wide cell; failures are recorded in both (first wins in
    /// each), so a cluster-spanning runtime sees per-side and global health.
    global_health: Arc<HealthState>,
    /// Tokens woken whenever this stage reports `Progress`.
    downstream: Vec<WakeToken>,
}

impl StageEntry {
    fn record_failure(&self, stage: &str, reason: String) {
        self.health.record(stage, reason.clone());
        self.global_health.record(stage, reason);
    }

    fn record_stall(&self, stage: &str, idle_quanta: u64) {
        self.health.record_stall(stage, idle_quanta);
        self.global_health.record_stall(stage, idle_quanta);
    }
}

/// The stage registry: owns registration, wake wiring and the default
/// health cell, and converts into either scheduler.
pub struct Runtime {
    entries: Vec<StageEntry>,
    health: Arc<HealthState>,
    stop: Arc<AtomicBool>,
}

impl Runtime {
    /// A runtime with a fresh health cell.
    pub fn new() -> Runtime {
        Runtime::with_health(Arc::new(HealthState::new()))
    }

    /// A runtime recording failures into `health` by default. Individual
    /// stages may override via [`Runtime::register_with_health`] — a
    /// cluster-wide runtime routes each side's failures to that side's
    /// registry.
    pub fn with_health(health: Arc<HealthState>) -> Runtime {
        Runtime { entries: Vec::new(), health, stop: Arc::new(AtomicBool::new(false)) }
    }

    /// The default health cell.
    pub fn health(&self) -> Arc<HealthState> {
        self.health.clone()
    }

    /// Register a stage reporting scheduler metrics into `metrics`.
    pub fn register(
        &mut self,
        stage: Arc<dyn Stage>,
        metrics: Arc<StageRuntimeMetrics>,
    ) -> StageId {
        let health = self.health.clone();
        self.register_with_health(stage, metrics, health)
    }

    /// Register a stage with an explicit failure sink.
    pub fn register_with_health(
        &mut self,
        stage: Arc<dyn Stage>,
        metrics: Arc<StageRuntimeMetrics>,
        health: Arc<HealthState>,
    ) -> StageId {
        self.entries.push(StageEntry {
            stage,
            token: WakeToken::new(),
            metrics,
            health,
            global_health: self.health.clone(),
            downstream: Vec::new(),
        });
        StageId(self.entries.len() - 1)
    }

    /// The wake token of a registered stage — hand it to producers outside
    /// the runtime (a log buffer, a transport sender) so appends wake the
    /// consumer.
    pub fn wake_token(&self, id: StageId) -> WakeToken {
        self.entries[id.0].token.clone()
    }

    /// Wire a producer→consumer edge: every `Progress` quantum of `from`
    /// wakes `to`.
    pub fn wire(&mut self, from: StageId, to: StageId) {
        let token = self.entries[to.0].token.clone();
        self.wire_token(from, token);
    }

    /// Wire a producer to an arbitrary wake token (cross-runtime edges).
    pub fn wire_token(&mut self, from: StageId, token: WakeToken) {
        self.entries[from.0].downstream.push(token);
    }

    /// Number of registered stages.
    pub fn stage_count(&self) -> usize {
        self.entries.len()
    }

    /// Spawn one scheduler thread per stage (threaded deployments).
    pub fn start_threaded(self) -> ThreadedRuntime {
        let stop = self.stop.clone();
        let all_tokens: Vec<WakeToken> = self.entries.iter().map(|e| e.token.clone()).collect();
        let health = self.health.clone();
        let mut handles = Vec::with_capacity(self.entries.len());
        for entry in self.entries {
            let stop = stop.clone();
            let tokens = all_tokens.clone();
            let name = entry.stage.name().to_string();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("imadg-{name}"))
                    .spawn(move || stage_loop(entry, stop, tokens))
                    .expect("spawn stage thread"),
            );
        }
        ThreadedRuntime { stop, tokens: all_tokens, handles, health }
    }

    /// Convert into a deterministic single-thread scheduler seeded with
    /// `seed` (step deployments, interleaving tests).
    pub fn into_step(self, seed: u64) -> StepScheduler {
        StepScheduler {
            entries: self
                .entries
                .into_iter()
                .map(|e| StepEntry {
                    stage: e.stage,
                    metrics: e.metrics,
                    health: e.health,
                    live: true,
                    idle_streak: 0,
                })
                .collect(),
            rng: SplitMix64::new(seed),
            health: self.health,
            stopped: false,
        }
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new()
    }
}

// ---------------------------------------------------------------------------
// Threaded scheduler
// ---------------------------------------------------------------------------

/// Progress quanta allowed per stage between a stop signal and thread
/// exit — a backstop so a pathological always-progressing stage cannot
/// hang shutdown while still letting normal stages drain their queues.
const DRAIN_QUANTA: usize = 100_000;

fn stage_loop(entry: StageEntry, stop: Arc<AtomicBool>, all_tokens: Vec<WakeToken>) {
    let name = entry.stage.name().to_string();
    let mut drain_budget = DRAIN_QUANTA;
    let mut idle_streak = 0u64;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| entry.stage.run_once()));
        entry.metrics.runs.inc();
        entry.metrics.run_quantum_us.record(t0.elapsed());
        match outcome {
            Err(payload) => {
                entry.record_failure(&name, panic_reason(payload));
                stop_all(&stop, &all_tokens);
                break;
            }
            Ok(Err(e)) => {
                entry.record_failure(&name, e.to_string());
                stop_all(&stop, &all_tokens);
                break;
            }
            Ok(Ok(StageOutcome::Shutdown)) => break,
            Ok(Ok(StageOutcome::Progress)) => {
                idle_streak = 0;
                for t in &entry.downstream {
                    t.wake();
                }
                if stopping {
                    drain_budget -= 1;
                    if drain_budget == 0 {
                        break;
                    }
                    continue;
                }
                if let Some(pause) = entry.stage.throttle() {
                    park(&entry, pause);
                }
            }
            Ok(Ok(StageOutcome::Idle)) => {
                if stopping {
                    // Drained: queue empty at stop time — graceful exit.
                    break;
                }
                if entry.stage.input_pending() == Some(true) {
                    idle_streak += 1;
                    if idle_streak == STALL_IDLE_QUANTA {
                        entry.record_stall(&name, idle_streak);
                    }
                } else {
                    idle_streak = 0;
                }
                park(&entry, entry.stage.park_hint());
            }
        }
    }
}

fn park(entry: &StageEntry, timeout: Duration) {
    let p0 = Instant::now();
    let woken = entry.token.park(timeout);
    entry.metrics.parks.inc();
    entry.metrics.park_us.record(p0.elapsed());
    if woken {
        entry.metrics.wakeups.inc();
    }
}

fn stop_all(stop: &AtomicBool, tokens: &[WakeToken]) {
    stop.store(true, Ordering::Release);
    for t in tokens {
        t.wake();
    }
}

/// Guard over a running threaded deployment. Dropping it performs the
/// drain-then-stop shutdown: every stage finishes its queue (first `Idle`
/// after the stop signal) before its thread exits.
pub struct ThreadedRuntime {
    stop: Arc<AtomicBool>,
    tokens: Vec<WakeToken>,
    handles: Vec<JoinHandle<()>>,
    health: Arc<HealthState>,
}

impl ThreadedRuntime {
    /// Current pipeline health.
    pub fn health(&self) -> RuntimeHealth {
        self.health.get()
    }

    /// Signal stop, drain every stage, join all threads, and return the
    /// final health.
    pub fn shutdown(mut self) -> RuntimeHealth {
        self.stop_and_join();
        self.health.get()
    }

    /// Wait for every stage to finish naturally (all stages reach
    /// [`StageOutcome::Shutdown`], or a failure stops the pipeline).
    /// Used by finite workloads whose stages carry their own deadline.
    pub fn join(mut self) -> RuntimeHealth {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.health.get()
    }

    fn stop_and_join(&mut self) {
        stop_all(&self.stop, &self.tokens);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedRuntime {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------------
// Step scheduler
// ---------------------------------------------------------------------------

/// Deterministic PRNG (splitmix64) choosing the step interleaving. Kept
/// dependency-free so `imadg-common` stays at the bottom of the graph.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

struct StepEntry {
    stage: Arc<dyn Stage>,
    metrics: Arc<StageRuntimeMetrics>,
    health: Arc<HealthState>,
    live: bool,
    idle_streak: u64,
}

/// What one [`StepScheduler::step`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// The stage that ran.
    pub stage: String,
    /// Its outcome.
    pub outcome: StepOutcome,
}

/// Outcome of a scheduler step (adds `Failed` to [`StageOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The stage made progress.
    Progress,
    /// The stage had nothing to do.
    Idle,
    /// The stage finished its lifetime and was descheduled.
    Shutdown,
    /// The stage failed (error or panic); the pipeline is stopped and the
    /// failure is recorded in the health state.
    Failed,
}

/// Deterministic single-thread scheduler: each [`StepScheduler::step`]
/// picks one live stage from the seeded RNG and runs one quantum on the
/// caller's thread. Subsumes the old fixed-order `pump()` drivers — the
/// seed chooses the interleaving, so the same seed replays the same
/// schedule bit-for-bit.
pub struct StepScheduler {
    entries: Vec<StepEntry>,
    rng: SplitMix64,
    health: Arc<HealthState>,
    stopped: bool,
}

impl StepScheduler {
    /// Current pipeline health.
    pub fn health(&self) -> RuntimeHealth {
        self.health.get()
    }

    /// True once a failure stopped the pipeline or every stage shut down.
    pub fn is_stopped(&self) -> bool {
        self.stopped || self.entries.iter().all(|e| !e.live)
    }

    /// Run one quantum of one RNG-chosen live stage. `None` when the
    /// scheduler is stopped or no live stages remain.
    pub fn step(&mut self) -> Option<StepReport> {
        if self.stopped {
            return None;
        }
        let live: Vec<usize> = (0..self.entries.len()).filter(|&i| self.entries[i].live).collect();
        if live.is_empty() {
            return None;
        }
        let pick = live[(self.rng.next() % live.len() as u64) as usize];
        let outcome = self.run_entry(pick);
        Some(StepReport { stage: self.entries[pick].stage.name().to_string(), outcome })
    }

    /// Run `n` steps; returns how many made progress.
    pub fn step_n(&mut self, n: usize) -> usize {
        let mut progressed = 0;
        for _ in 0..n {
            match self.step() {
                Some(r) if r.outcome == StepOutcome::Progress => progressed += 1,
                Some(_) => {}
                None => break,
            }
        }
        progressed
    }

    /// Drive every stage to a fixed point (the `pump_until_idle`
    /// generalization): sweep stages in registration order, re-running each
    /// until idle, until a full sweep makes no progress. Fails fast on the
    /// first stage error/panic.
    pub fn drain(&mut self) -> Result<()> {
        loop {
            if self.stopped {
                return self.health.to_result();
            }
            let mut any = false;
            for i in 0..self.entries.len() {
                while self.entries[i].live {
                    match self.run_entry(i) {
                        StepOutcome::Progress => any = true,
                        StepOutcome::Idle | StepOutcome::Shutdown => break,
                        StepOutcome::Failed => return self.health.to_result(),
                    }
                }
            }
            if !any {
                return Ok(());
            }
        }
    }

    fn run_entry(&mut self, i: usize) -> StepOutcome {
        let entry = &mut self.entries[i];
        let name = entry.stage.name().to_string();
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| entry.stage.run_once()));
        entry.metrics.runs.inc();
        entry.metrics.run_quantum_us.record(t0.elapsed());
        match outcome {
            Err(payload) => {
                let reason = panic_reason(payload);
                entry.health.record(&name, reason.clone());
                self.health.record(&name, reason);
                self.stopped = true;
                StepOutcome::Failed
            }
            Ok(Err(e)) => {
                entry.health.record(&name, e.to_string());
                self.health.record(&name, e.to_string());
                self.stopped = true;
                StepOutcome::Failed
            }
            Ok(Ok(StageOutcome::Progress)) => {
                entry.idle_streak = 0;
                StepOutcome::Progress
            }
            Ok(Ok(StageOutcome::Idle)) => {
                if entry.stage.input_pending() == Some(true) {
                    entry.idle_streak += 1;
                    if entry.idle_streak == STALL_IDLE_QUANTA {
                        entry.health.record_stall(&name, entry.idle_streak);
                        self.health.record_stall(&name, entry.idle_streak);
                    }
                } else {
                    entry.idle_streak = 0;
                }
                StepOutcome::Idle
            }
            Ok(Ok(StageOutcome::Shutdown)) => {
                entry.live = false;
                StepOutcome::Shutdown
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StageRuntimeMetrics;
    use std::sync::atomic::AtomicUsize;

    /// A stage that moves items from an input budget to an output counter.
    struct Producer {
        budget: AtomicUsize,
        out: Arc<AtomicUsize>,
    }

    impl Stage for Producer {
        fn name(&self) -> &str {
            "producer"
        }

        fn run_once(&self) -> Result<StageOutcome> {
            let left = self.budget.load(Ordering::Relaxed);
            if left == 0 {
                return Ok(StageOutcome::Idle);
            }
            self.budget.store(left - 1, Ordering::Relaxed);
            self.out.fetch_add(1, Ordering::Relaxed);
            Ok(StageOutcome::Progress)
        }
    }

    /// A stage that consumes whatever the producer made.
    struct Consumer {
        input: Arc<AtomicUsize>,
        seen: Arc<AtomicUsize>,
    }

    impl Stage for Consumer {
        fn name(&self) -> &str {
            "consumer"
        }

        fn run_once(&self) -> Result<StageOutcome> {
            let avail = self.input.load(Ordering::Relaxed);
            let seen = self.seen.load(Ordering::Relaxed);
            if seen >= avail {
                return Ok(StageOutcome::Idle);
            }
            self.seen.store(seen + 1, Ordering::Relaxed);
            Ok(StageOutcome::Progress)
        }
    }

    struct FailingStage;
    impl Stage for FailingStage {
        fn name(&self) -> &str {
            "boom"
        }
        fn run_once(&self) -> Result<StageOutcome> {
            Err(Error::TransportClosed)
        }
    }

    struct PanickingStage;
    impl Stage for PanickingStage {
        fn name(&self) -> &str {
            "kaboom"
        }
        fn run_once(&self) -> Result<StageOutcome> {
            panic!("injected stage panic");
        }
    }

    fn wire_pair(n: usize) -> (Runtime, Arc<AtomicUsize>, Arc<AtomicUsize>) {
        let made = Arc::new(AtomicUsize::new(0));
        let seen = Arc::new(AtomicUsize::new(0));
        let mut rt = Runtime::new();
        let p = rt.register(
            Arc::new(Producer { budget: AtomicUsize::new(n), out: made.clone() }),
            Arc::new(StageRuntimeMetrics::default()),
        );
        let c = rt.register(
            Arc::new(Consumer { input: made.clone(), seen: seen.clone() }),
            Arc::new(StageRuntimeMetrics::default()),
        );
        rt.wire(p, c);
        (rt, made, seen)
    }

    #[test]
    fn threaded_producer_wakes_consumer_and_drains_on_shutdown() {
        let (rt, made, seen) = wire_pair(500);
        let threads = rt.start_threaded();
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen.load(Ordering::Relaxed) < 500 {
            assert!(Instant::now() < deadline, "consumer never caught up");
            std::thread::yield_now();
        }
        let health = threads.shutdown();
        assert_eq!(health, RuntimeHealth::Healthy);
        assert_eq!(made.load(Ordering::Relaxed), 500);
        assert_eq!(seen.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn threaded_error_trips_health_and_stops() {
        let mut rt = Runtime::new();
        rt.register(Arc::new(FailingStage), Arc::new(StageRuntimeMetrics::default()));
        let threads = rt.start_threaded();
        let deadline = Instant::now() + Duration::from_secs(10);
        while threads.health().is_healthy() {
            assert!(Instant::now() < deadline, "failure never surfaced");
            std::thread::yield_now();
        }
        let health = threads.shutdown();
        let failure = health.failure().expect("failure recorded");
        assert_eq!(failure.stage, "boom");
        assert!(failure.reason.contains("transport closed"), "reason: {}", failure.reason);
    }

    #[test]
    fn threaded_panic_is_captured_not_detached() {
        let mut rt = Runtime::new();
        rt.register(Arc::new(PanickingStage), Arc::new(StageRuntimeMetrics::default()));
        let health = rt.start_threaded().shutdown();
        let failure = health.failure().expect("panic recorded");
        assert_eq!(failure.stage, "kaboom");
        assert!(failure.reason.contains("injected stage panic"));
    }

    #[test]
    fn step_scheduler_is_deterministic_per_seed() {
        let trace = |seed: u64| -> Vec<String> {
            let (rt, _, _) = wire_pair(20);
            let mut step = rt.into_step(seed);
            let mut names = Vec::new();
            for _ in 0..200 {
                match step.step() {
                    Some(r) => names.push(format!("{}:{:?}", r.stage, r.outcome)),
                    None => break,
                }
            }
            names
        };
        assert_eq!(trace(7), trace(7), "same seed, same interleaving");
        assert_ne!(trace(7), trace(8), "different seed, different interleaving");
    }

    #[test]
    fn step_drain_reaches_fixed_point() {
        let (rt, made, seen) = wire_pair(64);
        let mut step = rt.into_step(1);
        step.drain().unwrap();
        assert_eq!(made.load(Ordering::Relaxed), 64);
        assert_eq!(seen.load(Ordering::Relaxed), 64);
        assert!(step.health().is_healthy());
    }

    #[test]
    fn step_failure_stops_within_one_step() {
        let mut rt = Runtime::new();
        rt.register(Arc::new(FailingStage), Arc::new(StageRuntimeMetrics::default()));
        let mut step = rt.into_step(3);
        let r = step.step().unwrap();
        assert_eq!(r.outcome, StepOutcome::Failed);
        assert!(!step.health().is_healthy(), "failure visible after the step that hit it");
        assert_eq!(step.step(), None, "pipeline stopped deterministically");
        assert!(!step.health().is_healthy());
    }

    #[test]
    fn step_shutdown_deschedules_stage() {
        struct OneShot(AtomicUsize);
        impl Stage for OneShot {
            fn name(&self) -> &str {
                "oneshot"
            }
            fn run_once(&self) -> Result<StageOutcome> {
                Ok(if self.0.fetch_add(1, Ordering::Relaxed) == 0 {
                    StageOutcome::Progress
                } else {
                    StageOutcome::Shutdown
                })
            }
        }
        let mut rt = Runtime::new();
        rt.register(Arc::new(OneShot(AtomicUsize::new(0))), Arc::default());
        let mut step = rt.into_step(5);
        assert_eq!(step.step().unwrap().outcome, StepOutcome::Progress);
        assert_eq!(step.step().unwrap().outcome, StepOutcome::Shutdown);
        assert_eq!(step.step(), None, "no live stages remain");
        assert!(step.is_stopped());
    }

    /// A stage whose input queue always reports pending work it never
    /// consumes — the wedged-consumer shape stall detection exists for.
    struct WedgedStage;
    impl Stage for WedgedStage {
        fn name(&self) -> &str {
            "wedged"
        }
        fn run_once(&self) -> Result<StageOutcome> {
            Ok(StageOutcome::Idle)
        }
        fn input_pending(&self) -> Option<bool> {
            Some(true)
        }
    }

    #[test]
    fn stall_warning_fires_once_after_threshold() {
        let mut rt = Runtime::new();
        rt.register(Arc::new(WedgedStage), Arc::default());
        let health = rt.health();
        let mut step = rt.into_step(11);
        for _ in 0..STALL_IDLE_QUANTA - 1 {
            step.step();
        }
        assert!(health.stalls().is_empty(), "below threshold: no warning");
        step.step_n(3 * STALL_IDLE_QUANTA as usize);
        let stalls = health.stalls();
        assert_eq!(stalls.len(), 1, "one-shot per stage");
        assert_eq!(stalls[0].stage, "wedged");
        assert_eq!(stalls[0].idle_quanta, STALL_IDLE_QUANTA);
        assert!(health.is_healthy(), "a stall is a warning, not a failure");
    }

    #[test]
    fn idle_without_pending_input_never_stalls() {
        let (rt, _, _) = wire_pair(4);
        let health = rt.health();
        let mut step = rt.into_step(2);
        step.step_n(4 * STALL_IDLE_QUANTA as usize);
        assert!(health.stalls().is_empty(), "default input_pending opts out");
    }

    #[test]
    fn wake_token_latches_missed_wakes() {
        let t = WakeToken::new();
        t.wake();
        assert!(t.park(Duration::from_secs(5)), "latched wake consumed without blocking");
        assert!(!t.park(Duration::from_millis(1)), "no pending wake: timeout");
    }
}
