//! The IM-ADG Commit Table (paper §III.D.1).
//!
//! A commit-SCN-sorted structure mapping committed transactions to their
//! journal anchor nodes. When the recovery coordinator advances the
//! QuerySCN it *chops* the table: every node with commit SCN at or below
//! the new consistency point moves onto a worklink for flushing. "To
//! address the bottleneck of insertion into a single, sorted linked list,
//! the IM-ADG Commit Table can be partitioned" — partitioning is a
//! constructor parameter (and the subject of an ablation bench).

use std::collections::BTreeMap;
use std::sync::Arc;

use imadg_common::metrics::CommitTableMetrics;
use imadg_common::{Scn, TenantId, TxnId};
use parking_lot::Mutex;

use crate::journal::AnchorNode;

/// One committed transaction awaiting flush.
#[derive(Debug, Clone)]
pub struct CommitNode {
    /// The transaction.
    pub txn: TxnId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Its commit SCN.
    pub commit_scn: Scn,
    /// Specialized redo annotation from the commit record (§III.E).
    pub modified_inmemory: Option<bool>,
    /// Direct reference to the journal anchor holding the transaction's
    /// invalidation records ("one-step access", §III.D.1). `None` when no
    /// records were mined for the transaction.
    pub anchor: Option<Arc<AnchorNode>>,
}

/// Partitioned, commit-SCN-sorted table.
#[derive(Debug)]
pub struct CommitTable {
    partitions: Vec<Mutex<BTreeMap<(Scn, TxnId), CommitNode>>>,
    metrics: Arc<CommitTableMetrics>,
}

impl CommitTable {
    /// Table with `partitions` sorted lists.
    pub fn new(partitions: usize) -> CommitTable {
        Self::with_metrics(partitions, Arc::default())
    }

    /// Table reporting into a registry's commit-table stage.
    pub fn with_metrics(partitions: usize, metrics: Arc<CommitTableMetrics>) -> CommitTable {
        CommitTable {
            partitions: (0..partitions.max(1)).map(|_| Mutex::new(BTreeMap::new())).collect(),
            metrics,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Insert a node (mining of a commit record).
    pub fn insert(&self, node: CommitNode) {
        let p = node.txn.bucket(self.partitions.len());
        self.partitions[p].lock().insert((node.commit_scn, node.txn), node);
        self.metrics.inserts.inc();
    }

    /// Chop: remove and return every node with commit SCN ≤ `upto`, in
    /// commit-SCN order per partition. This is the worklink input.
    pub fn chop(&self, upto: Scn) -> Vec<CommitNode> {
        let mut out = Vec::new();
        for p in &self.partitions {
            let mut map = p.lock();
            // split_off keeps the ≥-half in the original; we want the ≤-half.
            let keep = map.split_off(&(Scn(upto.0 + 1), TxnId(0)));
            out.extend(std::mem::replace(&mut *map, keep).into_values());
        }
        if !out.is_empty() {
            self.metrics.chops.inc();
            self.metrics.chopped_txns.add(out.len() as u64);
            self.metrics.chop_size.record_value(out.len() as u64);
        }
        out
    }

    /// Number of pending nodes.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.lock().len()).sum()
    }

    /// True when no nodes are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The lowest pending commit SCN (diagnostics).
    pub fn min_pending(&self) -> Option<Scn> {
        self.partitions.iter().filter_map(|p| p.lock().keys().next().map(|(s, _)| *s)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(txn: u64, scn: u64) -> CommitNode {
        CommitNode {
            txn: TxnId(txn),
            tenant: TenantId::DEFAULT,
            commit_scn: Scn(scn),
            modified_inmemory: Some(true),
            anchor: None,
        }
    }

    #[test]
    fn chop_takes_exactly_up_to() {
        let t = CommitTable::new(1);
        for (txn, scn) in [(1, 10), (2, 20), (3, 30)] {
            t.insert(node(txn, scn));
        }
        let chopped = t.chop(Scn(20));
        assert_eq!(chopped.len(), 2);
        assert_eq!(chopped[0].commit_scn, Scn(10));
        assert_eq!(chopped[1].commit_scn, Scn(20), "inclusive boundary");
        assert_eq!(t.len(), 1);
        assert_eq!(t.min_pending(), Some(Scn(30)));
    }

    #[test]
    fn chop_empty_table() {
        let t = CommitTable::new(4);
        assert!(t.chop(Scn(100)).is_empty());
        assert!(t.is_empty());
        assert_eq!(t.min_pending(), None);
    }

    #[test]
    fn partitioned_chop_covers_all_partitions() {
        let t = CommitTable::new(4);
        for txn in 0..100u64 {
            t.insert(node(txn, txn + 1));
        }
        assert_eq!(t.len(), 100);
        let chopped = t.chop(Scn(50));
        assert_eq!(chopped.len(), 50);
        assert_eq!(t.len(), 50);
        // Within each partition, order is by commit SCN; overall multiset
        // is exactly SCNs 1..=50.
        let mut scns: Vec<u64> = chopped.iter().map(|n| n.commit_scn.0).collect();
        scns.sort_unstable();
        assert_eq!(scns, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn same_commit_scn_different_txns() {
        let t = CommitTable::new(1);
        t.insert(node(1, 10));
        t.insert(node(2, 10));
        assert_eq!(t.chop(Scn(10)).len(), 2);
    }

    #[test]
    fn concurrent_inserts() {
        let t = Arc::new(CommitTable::new(8));
        let mut handles = Vec::new();
        for base in 0..4u64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let id = base * 1000 + i;
                    t.insert(node(id, id + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 1000);
    }
}
