//! The Invalidation Flush Component (paper §III.D).
//!
//! Runs inside QuerySCN advancement, under the quiesce lock: the commit
//! table is chopped into a worklink; the worklink is drained — by the
//! coordinator alone, or cooperatively with the recovery workers
//! (§III.D.2); each flushed transaction's invalidation records are grouped
//! per object and pushed to the SMUs through a [`FlushTarget`] (the local
//! column store, or the RAC distributor of §III.F). DDL markers buffered in
//! the DDL Information Table are processed first (§III.G). Partially-mined
//! transactions trigger per-tenant coarse invalidation (§III.E).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use imadg_common::metrics::FlushMetrics;
use imadg_common::{CpuAccount, ObjectId, ObjectSet, Scn, TenantId};
use imadg_imcs::ImcsStore;
use imadg_recovery::{AdvanceHook, CoopHelper};
use imadg_redo::DdlKind;
use imadg_storage::Store;
use parking_lot::RwLock;

use crate::commit_table::{CommitNode, CommitTable};
use crate::ddl_table::DdlTable;
use crate::invalidation::{group_records, InvalidationGroup};
use crate::journal::Journal;
use crate::worklink::Worklink;

/// Where invalidation groups land: the local IMCS, or the RAC distributor.
pub trait FlushTarget: Send + Sync {
    /// Deliver one invalidation group to the owning SMUs.
    fn flush_group(&self, group: &InvalidationGroup);
    /// Per-tenant coarse invalidation (§III.E).
    fn coarse_invalidate(&self, tenant: TenantId);
    /// Drop all IMCUs of `object` (definition-changing DDL, §III.G).
    fn drop_object_units(&self, object: ObjectId);
    /// Barrier before the QuerySCN publish: everything delivered so far
    /// must be visible in the SMUs (RAC waits for instance acks here).
    fn synchronize(&self);
}

/// Single-instance target: groups apply directly to the local column store.
pub struct LocalFlushTarget {
    imcs: Arc<ImcsStore>,
}

impl LocalFlushTarget {
    /// Target over the instance's column store.
    pub fn new(imcs: Arc<ImcsStore>) -> Self {
        LocalFlushTarget { imcs }
    }
}

impl FlushTarget for LocalFlushTarget {
    fn flush_group(&self, group: &InvalidationGroup) {
        for &loc in &group.locs {
            self.imcs.invalidate(group.object, loc, group.commit_scn);
        }
    }

    fn coarse_invalidate(&self, tenant: TenantId) {
        self.imcs.mark_tenant_invalid(tenant);
    }

    fn drop_object_units(&self, object: ObjectId) {
        self.imcs.drop_object(object);
    }

    fn synchronize(&self) {}
}

/// Flush event counters. Now the flush stage of the pipeline-wide
/// [`MetricsRegistry`](imadg_common::MetricsRegistry); the old name stays
/// as an alias for existing call sites.
pub type FlushStats = FlushMetrics;

/// The invalidation flush component.
pub struct InvalidationFlush {
    journal: Arc<Journal>,
    commit_table: Arc<CommitTable>,
    ddl_table: Arc<DdlTable>,
    target: Arc<dyn FlushTarget>,
    /// Standby dictionary, updated by replayed DDL.
    store: Arc<Store>,
    /// In-memory enablement set, updated by `SetInMemory` markers.
    enabled: Arc<ObjectSet>,
    /// The live worklink during an advancement (cooperative flush entry).
    current: RwLock<Option<Arc<Worklink>>>,
    /// Nodes the coordinator claims per loop iteration.
    coordinator_batch: usize,
    /// Flush busy time charged to the coordinator path.
    pub cpu: CpuAccount,
    /// Event counters (shared with the pipeline metrics registry).
    pub stats: Arc<FlushMetrics>,
}

impl InvalidationFlush {
    /// Wire the flush component with a private stats instance.
    pub fn new(
        journal: Arc<Journal>,
        commit_table: Arc<CommitTable>,
        ddl_table: Arc<DdlTable>,
        target: Arc<dyn FlushTarget>,
        store: Arc<Store>,
        enabled: Arc<ObjectSet>,
    ) -> InvalidationFlush {
        Self::with_metrics(journal, commit_table, ddl_table, target, store, enabled, Arc::default())
    }

    /// Wire the flush component reporting into a registry's flush stage.
    #[allow(clippy::too_many_arguments)]
    pub fn with_metrics(
        journal: Arc<Journal>,
        commit_table: Arc<CommitTable>,
        ddl_table: Arc<DdlTable>,
        target: Arc<dyn FlushTarget>,
        store: Arc<Store>,
        enabled: Arc<ObjectSet>,
        stats: Arc<FlushMetrics>,
    ) -> InvalidationFlush {
        InvalidationFlush {
            journal,
            commit_table,
            ddl_table,
            target,
            store,
            enabled,
            current: RwLock::new(None),
            coordinator_batch: 32,
            cpu: CpuAccount::new(),
            stats,
        }
    }

    /// Flush one committed transaction's buffered invalidations.
    fn flush_node(&self, node: &CommitNode) {
        // Retire the journal entry; prefer the commit node's direct anchor
        // reference ("one-step access") but fall back to a lookup for nodes
        // built without one.
        let anchor = node.anchor.clone().or_else(|| self.journal.anchor(node.txn));
        self.journal.remove(node.txn);

        // Partial-mining detection (§III.E): the journal has none, or only
        // part (missing `begin`), of the transaction's records — possible
        // only when the standby instance restarted mid-transaction.
        let partially_mined = match &anchor {
            None => true,
            Some(a) => !a.has_begin(),
        };
        if partially_mined && node.modified_inmemory != Some(false) {
            self.target.coarse_invalidate(node.tenant);
            self.stats.coarse_invalidations.fetch_add(1, Ordering::Relaxed);
        }

        if let Some(anchor) = anchor {
            let records = anchor.drain_records();
            self.stats.flushed_records.fetch_add(records.len() as u64, Ordering::Relaxed);
            for group in group_records(records, node.commit_scn) {
                self.target.flush_group(&group);
                self.stats.flush_groups.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.stats.flushed_txns.fetch_add(1, Ordering::Relaxed);
    }

    fn apply_ddl(&self, marker: &imadg_redo::RedoMarker) {
        match &marker.ddl {
            DdlKind::CreateTable(spec) => {
                // Dictionary replay; ignore "already exists" on replay.
                let _ = self.store.create_table(spec.clone());
            }
            DdlKind::AddColumn { name, ctype } => {
                if let Ok(meta) = self.store.table(marker.object) {
                    let _ = meta.schema.write().add_column(name.clone(), *ctype);
                }
                self.target.drop_object_units(marker.object);
            }
            DdlKind::DropColumn { name } => {
                if let Ok(meta) = self.store.table(marker.object) {
                    let _ = meta.schema.write().drop_column(name);
                }
                self.target.drop_object_units(marker.object);
            }
            DdlKind::SetInMemory { enabled } => {
                if *enabled {
                    self.enabled.enable(marker.object);
                } else {
                    self.enabled.disable(marker.object);
                    self.target.drop_object_units(marker.object);
                }
            }
        }
        self.stats.ddl_applied.fetch_add(1, Ordering::Relaxed);
    }
}

impl AdvanceHook for InvalidationFlush {
    fn flush_for_advance(&self, target_scn: Scn) {
        let _t = self.cpu.timer();
        // DDL first: definition changes at or below the new consistency
        // point take effect before any query can run at it.
        for (_scn, marker) in self.ddl_table.take_upto(target_scn) {
            self.apply_ddl(&marker);
        }

        let nodes = self.commit_table.chop(target_scn);
        if !nodes.is_empty() {
            let wl = Arc::new(Worklink::new(nodes));
            *self.current.write() = Some(wl.clone());
            // Cooperative drain: recovery workers pick nodes up through
            // `help_flush`; the coordinator drains alongside them and
            // publishes only when the worklink is empty.
            while !wl.drained() {
                let batch = wl.claim(self.coordinator_batch);
                if batch.is_empty() {
                    std::thread::yield_now();
                    continue;
                }
                for node in &batch {
                    self.flush_node(node);
                    wl.complete();
                }
            }
            *self.current.write() = None;
        }
        // RAC barrier: remote SMUs must be current before the publish.
        self.target.synchronize();
    }
}

impl CoopHelper for InvalidationFlush {
    fn help_flush(&self, budget: usize) -> usize {
        let Some(wl) = self.current.read().clone() else { return 0 };
        let batch = wl.claim(budget);
        for node in &batch {
            self.flush_node(node);
            wl.complete();
        }
        self.stats.coop_flushed.fetch_add(batch.len() as u64, Ordering::Relaxed);
        batch.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{Dba, TxnId, WorkerId};
    use imadg_imcs::{ImcsStore, Imcu, ImcuHandle};
    use imadg_storage::{ColumnType, RowLoc, Schema, TableSpec};

    fn imcs_with_unit(obj: u32, dbas: &[u64]) -> (Arc<ImcsStore>, Arc<ImcuHandle>) {
        let imcs = Arc::new(ImcsStore::new());
        let o = imcs.ensure_object(ObjectId(obj), TenantId::DEFAULT);
        let h = Arc::new(ImcuHandle::new(Imcu::pending(
            ObjectId(obj),
            TenantId::DEFAULT,
            dbas.iter().map(|&d| Dba(d)).collect(),
            Scn(1),
            1,
        )));
        o.register(h.clone());
        (imcs, h)
    }

    fn flush_fixture(imcs: Arc<ImcsStore>) -> InvalidationFlush {
        let journal = Arc::new(Journal::new(16, 4));
        let enabled = Arc::new(ObjectSet::new());
        enabled.enable(ObjectId(1));
        InvalidationFlush::new(
            journal,
            Arc::new(CommitTable::new(2)),
            Arc::new(DdlTable::new()),
            Arc::new(LocalFlushTarget::new(imcs)),
            Arc::new(Store::new()),
            enabled,
        )
    }

    fn mine_txn(f: &InvalidationFlush, txn: u64, commit_scn: u64, locs: &[(u64, u16)]) {
        let anchor = f.journal.anchor_or_create(TxnId(txn), TenantId::DEFAULT);
        anchor.mark_begin();
        for &(dba, slot) in locs {
            anchor.add_record(
                WorkerId(0),
                crate::invalidation::InvalidationRecord {
                    object: ObjectId(1),
                    dba: Dba(dba),
                    slot,
                    tenant: TenantId::DEFAULT,
                },
            );
        }
        f.commit_table.insert(CommitNode {
            txn: TxnId(txn),
            tenant: TenantId::DEFAULT,
            commit_scn: Scn(commit_scn),
            modified_inmemory: Some(true),
            anchor: Some(anchor),
        });
    }

    #[test]
    fn advance_flushes_only_committed_up_to_target() {
        let (imcs, handle) = imcs_with_unit(1, &[10]);
        let f = flush_fixture(imcs);
        mine_txn(&f, 1, 5, &[(10, 0)]);
        mine_txn(&f, 2, 15, &[(10, 1)]);
        f.flush_for_advance(Scn(10));
        let v = handle.smu().view();
        assert!(v.is_invalid(RowLoc { dba: Dba(10), slot: 0 }));
        assert!(!v.is_invalid(RowLoc { dba: Dba(10), slot: 1 }), "commit 15 > target 10");
        assert_eq!(f.commit_table.len(), 1, "future txn still pending");
        assert_eq!(f.journal.len(), 1);
        // A later advancement flushes the rest.
        f.flush_for_advance(Scn(20));
        assert!(handle.smu().view().is_invalid(RowLoc { dba: Dba(10), slot: 1 }));
        assert!(f.journal.is_empty());
        assert_eq!(f.stats.flushed_txns.load(Ordering::Relaxed), 2);
        assert_eq!(f.stats.flushed_records.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn partial_mining_triggers_coarse_invalidation() {
        let (imcs, handle) = imcs_with_unit(1, &[10]);
        let f = flush_fixture(imcs);
        // Commit node with no journal anchor (restart lost it), flag true.
        f.commit_table.insert(CommitNode {
            txn: TxnId(9),
            tenant: TenantId::DEFAULT,
            commit_scn: Scn(5),
            modified_inmemory: Some(true),
            anchor: None,
        });
        f.flush_for_advance(Scn(5));
        assert!(handle.smu().view().all_invalid());
        assert_eq!(f.stats.coarse_invalidations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn missing_begin_also_triggers_coarse() {
        let (imcs, handle) = imcs_with_unit(1, &[10]);
        let f = flush_fixture(imcs);
        // Anchor exists (post-restart CVs were mined) but begin is missing.
        let anchor = f.journal.anchor_or_create(TxnId(3), TenantId::DEFAULT);
        anchor.add_record(
            WorkerId(0),
            crate::invalidation::InvalidationRecord {
                object: ObjectId(1),
                dba: Dba(10),
                slot: 4,
                tenant: TenantId::DEFAULT,
            },
        );
        f.commit_table.insert(CommitNode {
            txn: TxnId(3),
            tenant: TenantId::DEFAULT,
            commit_scn: Scn(5),
            modified_inmemory: None, // pessimistic: no annotation
            anchor: Some(anchor),
        });
        f.flush_for_advance(Scn(5));
        let v = handle.smu().view();
        assert!(v.all_invalid(), "coarse");
        assert!(v.is_invalid(RowLoc { dba: Dba(10), slot: 4 }), "mined part still flushed");
    }

    #[test]
    fn clean_flag_suppresses_coarse() {
        let (imcs, handle) = imcs_with_unit(1, &[10]);
        let f = flush_fixture(imcs);
        f.commit_table.insert(CommitNode {
            txn: TxnId(4),
            tenant: TenantId::DEFAULT,
            commit_scn: Scn(5),
            modified_inmemory: Some(false),
            anchor: None,
        });
        f.flush_for_advance(Scn(5));
        assert!(!handle.smu().view().all_invalid(), "flag=false: no coarse needed");
        assert_eq!(f.stats.coarse_invalidations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cooperative_helper_drains_worklink() {
        let (imcs, _handle) = imcs_with_unit(1, &[10]);
        let f = Arc::new(flush_fixture(imcs));
        for t in 0..64 {
            mine_txn(&f, t, t + 1, &[(10, (t % 8) as u16)]);
        }
        // Run the advancement on one thread while helpers drain from others.
        let helpers: Vec<_> = (0..2)
            .map(|_| {
                let f = f.clone();
                std::thread::spawn(move || {
                    let mut total = 0;
                    for _ in 0..1000 {
                        total += f.help_flush(8);
                        std::thread::yield_now();
                    }
                    total
                })
            })
            .collect();
        f.flush_for_advance(Scn(100));
        for h in helpers {
            h.join().unwrap();
        }
        assert_eq!(f.stats.flushed_txns.load(Ordering::Relaxed), 64);
        assert!(f.commit_table.is_empty());
        assert!(f.current.read().is_none());
    }

    #[test]
    fn ddl_marker_drops_units_and_updates_dictionary() {
        let (imcs, _handle) = imcs_with_unit(1, &[10]);
        let f = flush_fixture(imcs.clone());
        f.store
            .create_table(TableSpec {
                id: ObjectId(1),
                name: "t".into(),
                tenant: TenantId::DEFAULT,
                schema: Schema::of(&[("id", ColumnType::Int), ("n1", ColumnType::Int)]),
                key_ordinal: 0,
                rows_per_block: 8,
            })
            .unwrap();
        f.ddl_table.insert(
            Scn(5),
            Arc::new(imadg_redo::RedoMarker {
                object: ObjectId(1),
                tenant: TenantId::DEFAULT,
                ddl: DdlKind::DropColumn { name: "n1".into() },
            }),
        );
        f.flush_for_advance(Scn(10));
        assert!(imcs.object(ObjectId(1)).is_none(), "units dropped");
        assert!(f.store.table(ObjectId(1)).unwrap().schema.read().ordinal("n1").is_err());
        assert_eq!(f.stats.ddl_applied.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn set_inmemory_false_disables_and_drops() {
        let (imcs, _h) = imcs_with_unit(1, &[10]);
        let f = flush_fixture(imcs.clone());
        assert!(f.enabled.is_enabled(ObjectId(1)));
        f.ddl_table.insert(
            Scn(2),
            Arc::new(imadg_redo::RedoMarker {
                object: ObjectId(1),
                tenant: TenantId::DEFAULT,
                ddl: DdlKind::SetInMemory { enabled: false },
            }),
        );
        f.flush_for_advance(Scn(5));
        assert!(!f.enabled.is_enabled(ObjectId(1)));
        assert!(imcs.object(ObjectId(1)).is_none());
    }
}
