//! Assembly of the DBIM-on-ADG components for one standby deployment.
//!
//! [`DbimAdg`] bundles the journal, commit table, DDL table, mining
//! component and invalidation flush, pre-wired so the database layer can
//! hand the right pieces to media recovery: the mining component as an
//! apply observer, and the flush component as both the QuerySCN-advance
//! hook and the cooperative-flush helper.

use std::sync::Arc;

use imadg_common::MetricsRegistry;
use imadg_common::{ImcsConfig, ObjectSet, Result};
use imadg_recovery::{AdvanceHook, ApplyObserver, CoopHelper};
use imadg_storage::Store;

use crate::commit_table::CommitTable;
use crate::ddl_table::DdlTable;
use crate::flush::{FlushTarget, InvalidationFlush};
use crate::journal::Journal;
use crate::mining::MiningComponent;

/// The wired DBIM-on-ADG infrastructure of a standby (master) instance.
pub struct DbimAdg {
    /// The IM-ADG Journal.
    pub journal: Arc<Journal>,
    /// The IM-ADG Commit Table.
    pub commit_table: Arc<CommitTable>,
    /// The DDL Information Table.
    pub ddl_table: Arc<DdlTable>,
    /// The mining component (plug into recovery workers).
    pub mining: Arc<MiningComponent>,
    /// The invalidation flush (plug into the coordinator and workers).
    pub flush: Arc<InvalidationFlush>,
}

impl DbimAdg {
    /// Wire everything.
    ///
    /// * `config` — journal bucket count, commit table partitions;
    /// * `workers` — recovery parallelism (sizes per-worker journal areas);
    /// * `enabled` — objects enabled for standby population (mining filter);
    /// * `store` — the standby's storage (dictionary replay);
    /// * `target` — local or RAC flush target.
    pub fn new(
        config: &ImcsConfig,
        workers: usize,
        enabled: Arc<ObjectSet>,
        store: Arc<Store>,
        target: Arc<dyn FlushTarget>,
    ) -> Result<DbimAdg> {
        Self::with_metrics(config, workers, enabled, store, target, &MetricsRegistry::default())
    }

    /// Wire everything, reporting into the mining/journal/commit-table/flush
    /// stages of `registry`.
    pub fn with_metrics(
        config: &ImcsConfig,
        workers: usize,
        enabled: Arc<ObjectSet>,
        store: Arc<Store>,
        target: Arc<dyn FlushTarget>,
        registry: &MetricsRegistry,
    ) -> Result<DbimAdg> {
        config.validate()?;
        let journal = Arc::new(Journal::with_metrics(
            config.journal_buckets,
            workers,
            registry.journal.clone(),
        ));
        let commit_table = Arc::new(CommitTable::with_metrics(
            config.commit_table_partitions,
            registry.commit_table.clone(),
        ));
        let ddl_table = Arc::new(DdlTable::new());
        let mining = Arc::new(MiningComponent::with_metrics(
            journal.clone(),
            commit_table.clone(),
            ddl_table.clone(),
            enabled.clone(),
            registry.mining.clone(),
        ));
        let flush = Arc::new(InvalidationFlush::with_metrics(
            journal.clone(),
            commit_table.clone(),
            ddl_table.clone(),
            target,
            store,
            enabled,
            registry.flush.clone(),
        ));
        Ok(DbimAdg { journal, commit_table, ddl_table, mining, flush })
    }

    /// The mining component as a recovery-worker observer.
    pub fn observer(&self) -> Arc<dyn ApplyObserver> {
        self.mining.clone()
    }

    /// The flush component as the coordinator's advancement hook.
    pub fn advance_hook(&self) -> Arc<dyn AdvanceHook> {
        self.flush.clone()
    }

    /// The flush component as the workers' cooperative-flush helper.
    pub fn coop_helper(&self) -> Arc<dyn CoopHelper> {
        self.flush.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flush::LocalFlushTarget;
    use imadg_imcs::ImcsStore;

    #[test]
    fn wiring_shares_tables() {
        let adg = DbimAdg::new(
            &ImcsConfig::default(),
            4,
            Arc::new(ObjectSet::new()),
            Arc::new(Store::new()),
            Arc::new(LocalFlushTarget::new(Arc::new(ImcsStore::new()))),
        )
        .unwrap();
        assert!(Arc::ptr_eq(adg.mining.journal(), &adg.journal));
        assert!(Arc::ptr_eq(adg.mining.commit_table(), &adg.commit_table));
        let _: Arc<dyn ApplyObserver> = adg.observer();
        let _: Arc<dyn AdvanceHook> = adg.advance_hook();
        let _: Arc<dyn CoopHelper> = adg.coop_helper();
    }

    #[test]
    fn bad_config_rejected() {
        let mut cfg = ImcsConfig::default();
        cfg.journal_buckets = 0;
        assert!(DbimAdg::new(
            &cfg,
            4,
            Arc::new(ObjectSet::new()),
            Arc::new(Store::new()),
            Arc::new(LocalFlushTarget::new(Arc::new(ImcsStore::new()))),
        )
        .is_err());
    }
}
