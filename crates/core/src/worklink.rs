//! Worklinks (paper §III.D, Fig. 8).
//!
//! When the coordinator chops the commit table it strings the removed
//! nodes onto a *worklink*: a shared queue that the coordinator and — with
//! cooperative flush — the recovery workers drain together. The
//! coordinator publishes the new QuerySCN once the worklink is empty.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::queue::SegQueue;

use crate::commit_table::CommitNode;

/// A drain-cooperatively queue of commit nodes.
#[derive(Debug)]
pub struct Worklink {
    queue: SegQueue<CommitNode>,
    /// Nodes popped but not yet fully flushed. Combined with queue
    /// emptiness this tells the coordinator when everything is done.
    in_flight: AtomicUsize,
    total: usize,
}

impl Worklink {
    /// Build from the chopped commit-table nodes.
    pub fn new(nodes: Vec<CommitNode>) -> Worklink {
        let total = nodes.len();
        let queue = SegQueue::new();
        for n in nodes {
            queue.push(n);
        }
        Worklink { queue, in_flight: AtomicUsize::new(0), total }
    }

    /// Total nodes the worklink started with.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Claim up to `budget` nodes for flushing. The claimer must call
    /// [`Worklink::complete`] for each claimed node.
    pub fn claim(&self, budget: usize) -> Vec<CommitNode> {
        let mut out = Vec::new();
        while out.len() < budget {
            match self.queue.pop() {
                Some(n) => {
                    self.in_flight.fetch_add(1, Ordering::AcqRel);
                    out.push(n);
                }
                None => break,
            }
        }
        out
    }

    /// Report one claimed node as flushed.
    pub fn complete(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Is every node claimed *and* flushed?
    pub fn drained(&self) -> bool {
        self.queue.is_empty() && self.in_flight.load(Ordering::Acquire) == 0
    }

    /// Nodes still waiting to be claimed.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{Scn, TenantId, TxnId};

    fn node(txn: u64) -> CommitNode {
        CommitNode {
            txn: TxnId(txn),
            tenant: TenantId::DEFAULT,
            commit_scn: Scn(txn),
            modified_inmemory: None,
            anchor: None,
        }
    }

    #[test]
    fn claim_and_complete() {
        let wl = Worklink::new((0..10).map(node).collect());
        assert_eq!(wl.total(), 10);
        assert!(!wl.drained());
        let batch = wl.claim(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(wl.pending(), 6);
        assert!(!wl.drained(), "claimed but not completed");
        for _ in &batch {
            wl.complete();
        }
        assert!(!wl.drained(), "six still queued");
        let rest = wl.claim(100);
        assert_eq!(rest.len(), 6);
        for _ in &rest {
            wl.complete();
        }
        assert!(wl.drained());
    }

    #[test]
    fn empty_worklink_is_drained() {
        let wl = Worklink::new(vec![]);
        assert!(wl.drained());
        assert!(wl.claim(5).is_empty());
    }

    #[test]
    fn concurrent_cooperative_drain() {
        use std::sync::Arc;
        let wl = Arc::new(Worklink::new((0..1000).map(node).collect()));
        let mut handles = Vec::new();
        let flushed = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let wl = wl.clone();
            let flushed = flushed.clone();
            handles.push(std::thread::spawn(move || loop {
                let batch = wl.claim(16);
                if batch.is_empty() {
                    break;
                }
                for _ in &batch {
                    flushed.fetch_add(1, Ordering::Relaxed);
                    wl.complete();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(flushed.load(Ordering::Relaxed), 1000, "each node flushed exactly once");
        assert!(wl.drained());
    }
}
