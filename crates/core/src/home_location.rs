//! The home-location map (paper §III.F).
//!
//! With a RAC standby, IMCUs are distributed across the instances' column
//! stores by a hashing scheme; the map records which instance owns the
//! units for a DBA range. The invalidation flush queries it to route
//! invalidation groups to the right instance.

use imadg_common::{Dba, InstanceId};

/// DBA → owning-instance mapping for a RAC cluster.
#[derive(Debug, Clone)]
pub struct HomeLocationMap {
    instances: Vec<InstanceId>,
    /// Blocks per distribution stripe: consecutive blocks map to the same
    /// instance so an IMCU's whole DBA range shares one home.
    stripe: u64,
}

impl HomeLocationMap {
    /// Map over `instances`, striping every `stripe` consecutive DBAs.
    pub fn new(instances: Vec<InstanceId>, stripe: u64) -> HomeLocationMap {
        assert!(!instances.is_empty(), "need at least one instance");
        HomeLocationMap { instances, stripe: stripe.max(1) }
    }

    /// Single-instance map (non-RAC standby).
    pub fn single(instance: InstanceId) -> HomeLocationMap {
        HomeLocationMap::new(vec![instance], 1)
    }

    /// The instances in the map.
    pub fn instances(&self) -> &[InstanceId] {
        &self.instances
    }

    /// Home instance of a block.
    pub fn instance_for(&self, dba: Dba) -> InstanceId {
        let stripe_no = dba.0 / self.stripe;
        self.instances[(stripe_no % self.instances.len() as u64) as usize]
    }

    /// Does this cluster have more than one instance?
    pub fn is_clustered(&self) -> bool {
        self.instances.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_keeps_ranges_together() {
        let m = HomeLocationMap::new(vec![InstanceId(0), InstanceId(1)], 4);
        // DBAs 0..4 → stripe 0 → instance 0; 4..8 → instance 1; 8..12 → 0.
        for d in 0..4 {
            assert_eq!(m.instance_for(Dba(d)), InstanceId(0));
        }
        for d in 4..8 {
            assert_eq!(m.instance_for(Dba(d)), InstanceId(1));
        }
        assert_eq!(m.instance_for(Dba(8)), InstanceId(0));
        assert!(m.is_clustered());
    }

    #[test]
    fn single_instance_owns_everything() {
        let m = HomeLocationMap::single(InstanceId(3));
        for d in [0u64, 7, 1000] {
            assert_eq!(m.instance_for(Dba(d)), InstanceId(3));
        }
        assert!(!m.is_clustered());
    }

    #[test]
    fn distribution_is_roughly_even() {
        let m = HomeLocationMap::new(vec![InstanceId(0), InstanceId(1), InstanceId(2)], 8);
        let mut counts = [0usize; 3];
        for d in 0..3000 {
            counts[m.instance_for(Dba(d)).0 as usize] += 1;
        }
        for c in counts {
            assert_eq!(c, 1000);
        }
    }
}
