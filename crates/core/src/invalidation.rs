//! Invalidation records and groups.
//!
//! An invalidation record is the tuple the Mining Component notes down when
//! it sniffs a CV against an in-memory-enabled object: *(object, DBA,
//! changed row, tenant)*, associated with the generating transaction
//! (paper §III.B, Fig. 6). At flush time records are organized into
//! *invalidation groups* keyed by object so they can be routed to the SMUs
//! (and, under RAC, to the owning instance) cheaply (§III.D, §III.F).

use imadg_common::{Dba, ObjectId, Scn, SlotId, TenantId};
use imadg_storage::RowLoc;

/// One mined invalidation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidationRecord {
    /// Modified object.
    pub object: ObjectId,
    /// Modified block.
    pub dba: Dba,
    /// Modified row slot.
    pub slot: SlotId,
    /// Owning tenant.
    pub tenant: TenantId,
}

impl InvalidationRecord {
    /// The record's physical row location.
    pub fn loc(&self) -> RowLoc {
        RowLoc { dba: self.dba, slot: self.slot }
    }
}

/// A batch of invalidations for one object from one committed transaction,
/// ready to be flushed to SMUs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidationGroup {
    /// Target object.
    pub object: ObjectId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Commit SCN of the transaction that made the changes.
    pub commit_scn: Scn,
    /// Modified row locations.
    pub locs: Vec<RowLoc>,
}

/// Organize a transaction's records into per-object invalidation groups.
pub fn group_records(records: Vec<InvalidationRecord>, commit_scn: Scn) -> Vec<InvalidationGroup> {
    let mut groups: Vec<InvalidationGroup> = Vec::new();
    for r in records {
        match groups.iter_mut().find(|g| g.object == r.object) {
            Some(g) => g.locs.push(r.loc()),
            None => groups.push(InvalidationGroup {
                object: r.object,
                tenant: r.tenant,
                commit_scn,
                locs: vec![r.loc()],
            }),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(obj: u32, dba: u64, slot: u16) -> InvalidationRecord {
        InvalidationRecord { object: ObjectId(obj), dba: Dba(dba), slot, tenant: TenantId::DEFAULT }
    }

    #[test]
    fn grouping_by_object() {
        let groups = group_records(vec![rec(1, 10, 0), rec(2, 20, 1), rec(1, 11, 2)], Scn(100));
        assert_eq!(groups.len(), 2);
        let g1 = groups.iter().find(|g| g.object == ObjectId(1)).unwrap();
        assert_eq!(g1.locs.len(), 2);
        assert_eq!(g1.commit_scn, Scn(100));
        let g2 = groups.iter().find(|g| g.object == ObjectId(2)).unwrap();
        assert_eq!(g2.locs, vec![RowLoc { dba: Dba(20), slot: 1 }]);
    }

    #[test]
    fn empty_records_no_groups() {
        assert!(group_records(vec![], Scn(1)).is_empty());
    }
}
