//! The IM-ADG Journal (paper §III.C).
//!
//! An in-memory hash table mapping transaction ids to their buffered
//! invalidation records. Design points taken directly from the paper:
//!
//! * the table is **sized from the apply parallelism** to keep contention
//!   low; hash chains are protected by a *bucket latch*;
//! * each anchor node gives **every recovery worker its own area**, so the
//!   common case — several workers mining records for one transaction —
//!   needs no synchronization between them;
//! * the anchor also remembers whether the *transaction begin* control
//!   record was mined; a missing begin after an instance restart marks the
//!   transaction as partially mined (§III.E).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use imadg_common::metrics::JournalMetrics;
use imadg_common::{TenantId, TxnId, WorkerId};
use parking_lot::Mutex;

use crate::invalidation::InvalidationRecord;

/// Anchor node: the per-transaction hub of buffered invalidation records.
#[derive(Debug)]
pub struct AnchorNode {
    /// Owning transaction.
    pub txn: TxnId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Was the `Begin` control record mined? (false after a standby
    /// restart that lost the earlier part of the transaction)
    has_begin: AtomicBool,
    /// Per-recovery-worker record areas.
    areas: Vec<Mutex<Vec<InvalidationRecord>>>,
    record_count: AtomicUsize,
}

impl AnchorNode {
    fn new(txn: TxnId, tenant: TenantId, workers: usize) -> AnchorNode {
        AnchorNode {
            txn,
            tenant,
            has_begin: AtomicBool::new(false),
            areas: (0..workers.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            record_count: AtomicUsize::new(0),
        }
    }

    /// Mark that the begin control record was mined.
    pub fn mark_begin(&self) {
        self.has_begin.store(true, Ordering::Release);
    }

    /// Was the transaction mined from its beginning?
    pub fn has_begin(&self) -> bool {
        self.has_begin.load(Ordering::Acquire)
    }

    /// Buffer a record in `worker`'s private area.
    pub fn add_record(&self, worker: WorkerId, record: InvalidationRecord) {
        let area = &self.areas[(worker.0 as usize) % self.areas.len()];
        area.lock().push(record);
        self.record_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total buffered records.
    pub fn record_count(&self) -> usize {
        self.record_count.load(Ordering::Relaxed)
    }

    /// Drain all areas (flush time — the transaction is being retired).
    pub fn drain_records(&self) -> Vec<InvalidationRecord> {
        let mut out = Vec::with_capacity(self.record_count());
        for area in &self.areas {
            out.append(&mut area.lock());
        }
        self.record_count.store(0, Ordering::Relaxed);
        out
    }
}

/// The journal: bucketized transaction → anchor map.
#[derive(Debug)]
pub struct Journal {
    buckets: Vec<Mutex<HashMap<TxnId, Arc<AnchorNode>>>>,
    workers: usize,
    metrics: Arc<JournalMetrics>,
}

impl Journal {
    /// Journal with `buckets` hash buckets and per-anchor areas for
    /// `workers` recovery workers.
    pub fn new(buckets: usize, workers: usize) -> Journal {
        Self::with_metrics(buckets, workers, Arc::default())
    }

    /// Journal reporting into a registry's journal stage.
    pub fn with_metrics(buckets: usize, workers: usize, metrics: Arc<JournalMetrics>) -> Journal {
        Journal {
            buckets: (0..buckets.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            workers: workers.max(1),
            metrics,
        }
    }

    #[inline]
    fn bucket(&self, txn: TxnId) -> &Mutex<HashMap<TxnId, Arc<AnchorNode>>> {
        &self.buckets[txn.bucket(self.buckets.len())]
    }

    /// Get the anchor for `txn`, creating it under the bucket latch if
    /// missing.
    pub fn anchor_or_create(&self, txn: TxnId, tenant: TenantId) -> Arc<AnchorNode> {
        let bucket = self.bucket(txn);
        // Opportunistic try first so blocked acquisitions show up as
        // bucket-latch contention in the journal metrics.
        let mut guard = match bucket.try_lock() {
            Some(g) => g,
            None => {
                self.metrics.bucket_contention.inc();
                bucket.lock()
            }
        };
        match guard.entry(txn) {
            Entry::Occupied(e) => e.get().clone(),
            Entry::Vacant(e) => {
                self.metrics.anchors_created.inc();
                e.insert(Arc::new(AnchorNode::new(txn, tenant, self.workers))).clone()
            }
        }
    }

    /// Look up an anchor without creating it.
    pub fn anchor(&self, txn: TxnId) -> Option<Arc<AnchorNode>> {
        self.bucket(txn).lock().get(&txn).cloned()
    }

    /// Remove and return the anchor (commit flush or abort discard).
    pub fn remove(&self, txn: TxnId) -> Option<Arc<AnchorNode>> {
        self.bucket(txn).lock().remove(&txn)
    }

    /// Number of anchored transactions.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).sum()
    }

    /// True when no transactions are anchored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total buffered records across all anchors (diagnostics).
    pub fn total_records(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.lock().values().map(|a| a.record_count()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{Dba, ObjectId};

    fn rec(dba: u64, slot: u16) -> InvalidationRecord {
        InvalidationRecord { object: ObjectId(1), dba: Dba(dba), slot, tenant: TenantId::DEFAULT }
    }

    #[test]
    fn anchor_lifecycle() {
        let j = Journal::new(16, 4);
        assert!(j.is_empty());
        let a = j.anchor_or_create(TxnId(1), TenantId::DEFAULT);
        assert!(!a.has_begin());
        a.mark_begin();
        assert!(a.has_begin());
        let again = j.anchor_or_create(TxnId(1), TenantId::DEFAULT);
        assert!(Arc::ptr_eq(&a, &again), "same anchor returned");
        assert_eq!(j.len(), 1);
        let removed = j.remove(TxnId(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &removed));
        assert!(j.anchor(TxnId(1)).is_none());
    }

    #[test]
    fn per_worker_areas_merge_on_drain() {
        let j = Journal::new(16, 4);
        let a = j.anchor_or_create(TxnId(1), TenantId::DEFAULT);
        a.add_record(WorkerId(0), rec(10, 0));
        a.add_record(WorkerId(3), rec(30, 1));
        a.add_record(WorkerId(0), rec(11, 2));
        assert_eq!(a.record_count(), 3);
        assert_eq!(j.total_records(), 3);
        let drained = a.drain_records();
        assert_eq!(drained.len(), 3);
        assert_eq!(a.record_count(), 0);
        // Worker-0's records stay in mined order.
        let w0: Vec<u64> = drained.iter().filter(|r| r.dba.0 < 20).map(|r| r.dba.0).collect();
        assert_eq!(w0, vec![10, 11]);
    }

    #[test]
    fn worker_id_beyond_area_count_wraps() {
        let j = Journal::new(4, 2);
        let a = j.anchor_or_create(TxnId(1), TenantId::DEFAULT);
        a.add_record(WorkerId(7), rec(1, 0)); // 7 % 2 = area 1
        assert_eq!(a.record_count(), 1);
    }

    #[test]
    fn many_transactions_spread_across_buckets() {
        let j = Journal::new(8, 2);
        for t in 0..100 {
            j.anchor_or_create(TxnId(t), TenantId::DEFAULT);
        }
        assert_eq!(j.len(), 100);
    }

    #[test]
    fn concurrent_mining_from_multiple_workers() {
        let j = Arc::new(Journal::new(64, 8));
        let mut handles = Vec::new();
        for w in 0..8u16 {
            let j = j.clone();
            handles.push(std::thread::spawn(move || {
                for t in 0..50u64 {
                    let a = j.anchor_or_create(TxnId(t), TenantId::DEFAULT);
                    a.add_record(WorkerId(w), rec(u64::from(w) * 1000 + t, 0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.len(), 50);
        assert_eq!(j.total_records(), 400);
    }
}
