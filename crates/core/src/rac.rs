//! RAC distribution of invalidation groups (paper §III.F).
//!
//! On a RAC standby, redo apply runs only on the master instance (Single
//! Instance Redo Apply), so the IM-ADG Journal and Commit Table exist only
//! there. During QuerySCN advancement the flush component looks up each
//! invalidation group's home instance and transmits it over the (simulated)
//! interconnect; the receiving instance's *local recovery coordinator*
//! applies it to its SMUs and acknowledges. "Since messaging over the
//! network can become a bottleneck, DBIM-on-ADG employs batching and
//! pipelined transmission of invalidation groups".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use imadg_common::{InstanceId, ObjectId, Result, Stage, StageOutcome, TenantId, WakeToken};
use imadg_imcs::ImcsStore;
use parking_lot::Mutex;

use crate::flush::FlushTarget;
use crate::home_location::HomeLocationMap;
use crate::invalidation::InvalidationGroup;

/// A message on the standby interconnect.
#[derive(Debug, Clone)]
pub enum RacMessage {
    /// A batch of invalidation groups (batched transmission, §III.F).
    Invalidate(Vec<InvalidationGroup>),
    /// Per-tenant coarse invalidation.
    Coarse(TenantId),
    /// Drop all units of an object (DDL).
    DropObject(ObjectId),
}

/// The receiving end on a non-master instance: its local recovery
/// coordinator applies messages to the local column store and acks.
pub struct RacEndpoint {
    /// This instance.
    pub instance: InstanceId,
    /// Stage id for the runtime (`rac.N`).
    stage_name: String,
    rx: Mutex<Receiver<RacMessage>>,
    imcs: Arc<ImcsStore>,
    acked: Arc<AtomicU64>,
    /// Simulated per-message processing/network cost.
    per_message_cost: Duration,
    processed: AtomicU64,
    /// Woken by the master's flush target on every send.
    waker: Mutex<Option<WakeToken>>,
}

impl RacEndpoint {
    /// The local column store served by this endpoint.
    pub fn imcs(&self) -> &Arc<ImcsStore> {
        &self.imcs
    }

    /// Wake `token` whenever the master sends this endpoint a message, so
    /// its stage parks instead of polling.
    pub fn set_waker(&self, token: WakeToken) {
        *self.waker.lock() = Some(token);
    }

    fn wake(&self) {
        if let Some(w) = self.waker.lock().as_ref() {
            w.wake();
        }
    }

    /// Apply every pending message; returns how many were processed.
    pub fn process_pending(&self) -> usize {
        let rx = self.rx.lock();
        let mut n = 0;
        while let Ok(msg) = rx.try_recv() {
            if !self.per_message_cost.is_zero() {
                std::thread::sleep(self.per_message_cost);
            }
            match msg {
                RacMessage::Invalidate(groups) => {
                    for g in groups {
                        for &loc in &g.locs {
                            self.imcs.invalidate(g.object, loc, g.commit_scn);
                        }
                    }
                }
                RacMessage::Coarse(tenant) => {
                    self.imcs.mark_tenant_invalid(tenant);
                }
                RacMessage::DropObject(object) => {
                    self.imcs.drop_object(object);
                }
            }
            self.acked.fetch_add(1, Ordering::AcqRel);
            n += 1;
        }
        n
    }

    /// Total messages processed.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed).max(self.acked.load(Ordering::Relaxed))
    }
}

/// The endpoint's "local recovery coordinator" as a runtime stage
/// (metrics id `rac.N`): drains the interconnect queue when woken.
impl Stage for RacEndpoint {
    fn name(&self) -> &str {
        &self.stage_name
    }

    fn run_once(&self) -> Result<StageOutcome> {
        Ok(if self.process_pending() > 0 { StageOutcome::Progress } else { StageOutcome::Idle })
    }
}

struct RemoteLink {
    tx: Sender<RacMessage>,
    sent: AtomicU64,
    acked: Arc<AtomicU64>,
    endpoint: Arc<RacEndpoint>,
}

/// Master-side flush target distributing groups across the cluster.
pub struct RacFlushTarget {
    home: HomeLocationMap,
    local_instance: InstanceId,
    local: Arc<ImcsStore>,
    remotes: HashMap<InstanceId, RemoteLink>,
    /// Groups per interconnect message; 1 disables batching (ablation).
    batch: usize,
    /// Buffered groups awaiting a full batch, per remote instance.
    pending: Mutex<HashMap<InstanceId, Vec<InvalidationGroup>>>,
    /// When true, `synchronize` pumps remote endpoints inline (step mode);
    /// in threaded deployments the instances pump themselves.
    pub inline_pump: bool,
    /// Interconnect messages sent (batching ablation metric).
    pub messages_sent: AtomicU64,
}

impl RacFlushTarget {
    /// Build the distributor plus the remote endpoints.
    ///
    /// `instances` lists the whole cluster; `local_instance` (the master)
    /// applies its share directly. Returns the target and the endpoints of
    /// every non-master instance.
    pub fn new(
        home: HomeLocationMap,
        local_instance: InstanceId,
        stores: HashMap<InstanceId, Arc<ImcsStore>>,
        batch: usize,
        per_message_cost: Duration,
    ) -> (RacFlushTarget, Vec<Arc<RacEndpoint>>) {
        let local = stores.get(&local_instance).expect("master has a store").clone();
        let mut remotes = HashMap::new();
        let mut endpoints = Vec::new();
        for (&inst, store) in &stores {
            if inst == local_instance {
                continue;
            }
            let (tx, rx) = unbounded();
            let acked = Arc::new(AtomicU64::new(0));
            let endpoint = Arc::new(RacEndpoint {
                instance: inst,
                stage_name: format!("rac.{}", inst.0),
                rx: Mutex::new(rx),
                imcs: store.clone(),
                acked: acked.clone(),
                per_message_cost,
                processed: AtomicU64::new(0),
                waker: Mutex::new(None),
            });
            endpoints.push(endpoint.clone());
            remotes.insert(inst, RemoteLink { tx, sent: AtomicU64::new(0), acked, endpoint });
        }
        (
            RacFlushTarget {
                home,
                local_instance,
                local,
                remotes,
                batch: batch.max(1),
                pending: Mutex::new(HashMap::new()),
                inline_pump: true,
                messages_sent: AtomicU64::new(0),
            },
            endpoints,
        )
    }

    fn send(&self, inst: InstanceId, msg: RacMessage) {
        let link = &self.remotes[&inst];
        link.sent.fetch_add(1, Ordering::AcqRel);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        let _ = link.tx.send(msg);
        link.endpoint.wake();
    }

    fn enqueue_group(&self, inst: InstanceId, group: InvalidationGroup) {
        let full: Option<Vec<InvalidationGroup>> = {
            let mut pending = self.pending.lock();
            let buf = pending.entry(inst).or_default();
            buf.push(group);
            if buf.len() >= self.batch {
                Some(std::mem::take(buf))
            } else {
                None
            }
        };
        if let Some(groups) = full {
            // Pipelined: ship without waiting for the ack.
            self.send(inst, RacMessage::Invalidate(groups));
        }
    }

    fn flush_pending(&self) {
        let drained: Vec<(InstanceId, Vec<InvalidationGroup>)> = {
            let mut pending = self.pending.lock();
            pending
                .iter_mut()
                .filter(|(_, v)| !v.is_empty())
                .map(|(k, v)| (*k, std::mem::take(v)))
                .collect()
        };
        for (inst, groups) in drained {
            self.send(inst, RacMessage::Invalidate(groups));
        }
    }
}

impl FlushTarget for RacFlushTarget {
    fn flush_group(&self, group: &InvalidationGroup) {
        // Split the group's locations by home instance.
        let mut by_instance: HashMap<InstanceId, Vec<imadg_storage::RowLoc>> = HashMap::new();
        for &loc in &group.locs {
            by_instance.entry(self.home.instance_for(loc.dba)).or_default().push(loc);
        }
        for (inst, locs) in by_instance {
            if inst == self.local_instance {
                for &loc in &locs {
                    self.local.invalidate(group.object, loc, group.commit_scn);
                }
            } else {
                self.enqueue_group(
                    inst,
                    InvalidationGroup {
                        object: group.object,
                        tenant: group.tenant,
                        commit_scn: group.commit_scn,
                        locs,
                    },
                );
            }
        }
    }

    fn coarse_invalidate(&self, tenant: TenantId) {
        self.local.mark_tenant_invalid(tenant);
        for &inst in self.home.instances() {
            if inst != self.local_instance {
                self.send(inst, RacMessage::Coarse(tenant));
            }
        }
    }

    fn drop_object_units(&self, object: ObjectId) {
        self.local.drop_object(object);
        for &inst in self.home.instances() {
            if inst != self.local_instance {
                self.send(inst, RacMessage::DropObject(object));
            }
        }
    }

    fn synchronize(&self) {
        self.flush_pending();
        // Wait until every instance acknowledged everything we sent.
        loop {
            let all_acked = self
                .remotes
                .values()
                .all(|l| l.acked.load(Ordering::Acquire) >= l.sent.load(Ordering::Acquire));
            if all_acked {
                return;
            }
            if self.inline_pump {
                for link in self.remotes.values() {
                    link.endpoint.process_pending();
                }
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{Dba, Scn};
    use imadg_imcs::{Imcu, ImcuHandle};
    use imadg_storage::RowLoc;

    fn cluster() -> (RacFlushTarget, Vec<Arc<RacEndpoint>>, HashMap<InstanceId, Arc<ImcsStore>>) {
        let mut stores = HashMap::new();
        for i in 0..2u8 {
            stores.insert(InstanceId(i), Arc::new(ImcsStore::new()));
        }
        // Stripe 4: DBAs 0..4 → inst 0 (master), 4..8 → inst 1.
        let home = HomeLocationMap::new(vec![InstanceId(0), InstanceId(1)], 4);
        let (target, endpoints) =
            RacFlushTarget::new(home, InstanceId(0), stores.clone(), 2, Duration::ZERO);
        (target, endpoints, stores)
    }

    fn unit_on(store: &ImcsStore, obj: u32, dbas: &[u64]) -> Arc<ImcuHandle> {
        let o = store.ensure_object(ObjectId(obj), TenantId::DEFAULT);
        let h = Arc::new(ImcuHandle::new(Imcu::pending(
            ObjectId(obj),
            TenantId::DEFAULT,
            dbas.iter().map(|&d| Dba(d)).collect(),
            Scn(1),
            1,
        )));
        o.register(h.clone());
        h
    }

    fn group(obj: u32, scn: u64, locs: &[(u64, u16)]) -> InvalidationGroup {
        InvalidationGroup {
            object: ObjectId(obj),
            tenant: TenantId::DEFAULT,
            commit_scn: Scn(scn),
            locs: locs.iter().map(|&(d, s)| RowLoc { dba: Dba(d), slot: s }).collect(),
        }
    }

    #[test]
    fn groups_split_by_home_instance() {
        let (target, _eps, stores) = cluster();
        let h0 = unit_on(&stores[&InstanceId(0)], 1, &[1]);
        let h1 = unit_on(&stores[&InstanceId(1)], 1, &[5]);
        target.flush_group(&group(1, 9, &[(1, 0), (5, 0)]));
        target.synchronize();
        assert!(h0.smu().view().is_invalid(RowLoc { dba: Dba(1), slot: 0 }), "local applied");
        assert!(
            h1.smu().view().is_invalid(RowLoc { dba: Dba(5), slot: 0 }),
            "remote applied after sync"
        );
    }

    #[test]
    fn batching_reduces_messages() {
        let (target, _eps, stores) = cluster();
        unit_on(&stores[&InstanceId(1)], 1, &[5]);
        // 6 remote groups, batch=2 → 3 messages.
        for i in 0..6 {
            target.flush_group(&group(1, 9 + i, &[(5, i as u16)]));
        }
        target.synchronize();
        assert_eq!(target.messages_sent.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn partial_batch_flushed_at_synchronize() {
        let (target, _eps, stores) = cluster();
        let h1 = unit_on(&stores[&InstanceId(1)], 1, &[5]);
        target.flush_group(&group(1, 9, &[(5, 3)]));
        // One group < batch of 2: only synchronize pushes it out.
        assert_eq!(target.messages_sent.load(Ordering::Relaxed), 0);
        target.synchronize();
        assert_eq!(target.messages_sent.load(Ordering::Relaxed), 1);
        assert!(h1.smu().view().is_invalid(RowLoc { dba: Dba(5), slot: 3 }));
    }

    #[test]
    fn coarse_and_drop_fan_out() {
        let (target, _eps, stores) = cluster();
        let h0 = unit_on(&stores[&InstanceId(0)], 1, &[1]);
        let h1 = unit_on(&stores[&InstanceId(1)], 1, &[5]);
        target.coarse_invalidate(TenantId::DEFAULT);
        target.synchronize();
        assert!(h0.smu().view().all_invalid());
        assert!(h1.smu().view().all_invalid());
        target.drop_object_units(ObjectId(1));
        target.synchronize();
        assert!(stores[&InstanceId(0)].object(ObjectId(1)).is_none());
        assert!(stores[&InstanceId(1)].object(ObjectId(1)).is_none());
    }

    #[test]
    fn threaded_endpoints_ack_without_inline_pump() {
        let (mut target, endpoints, stores) = cluster();
        target.inline_pump = false;
        let h1 = unit_on(&stores[&InstanceId(1)], 1, &[5]);
        // Endpoints run as runtime stages, woken by the master's sends.
        let mut rt = imadg_common::Runtime::new();
        for ep in &endpoints {
            let id = rt.register(ep.clone() as Arc<dyn Stage>, Arc::default());
            ep.set_waker(rt.wake_token(id));
        }
        let threads = rt.start_threaded();
        target.flush_group(&group(1, 9, &[(5, 0)]));
        target.synchronize();
        assert!(h1.smu().view().is_invalid(RowLoc { dba: Dba(5), slot: 0 }));
        assert!(threads.shutdown().is_healthy());
    }
}
