//! `imadg-core`: the DBIM-on-ADG infrastructure — the paper's contribution.
//!
//! Synchronized maintenance of the standby's In-Memory Column Store, driven
//! purely by redo apply (paper §III):
//!
//! * **Mining Component** (§III.B) — piggybacks on recovery workers,
//!   sniffing CVs against in-memory-enabled objects into invalidation
//!   records, and transaction control information into the commit table;
//! * **IM-ADG Journal** (§III.C) — txn-hashed buffer with bucket latches
//!   and per-worker record areas;
//! * **IM-ADG Commit Table** (§III.D.1) — partitioned, commit-SCN-sorted
//!   nodes with direct anchor references;
//! * **Invalidation Flush + Worklink + Cooperative Flush** (§III.D) — runs
//!   under the quiesce lock during QuerySCN advancement;
//! * **Coarse invalidation via the commit-record flag** (§III.E);
//! * **RAC distribution with home locations, batching and pipelining**
//!   (§III.F);
//! * **DDL Information Table fed by redo markers** (§III.G).

pub mod commit_table;
pub mod ddl_table;
pub mod flush;
pub mod home_location;
pub mod invalidation;
pub mod journal;
pub mod mining;
pub mod pipeline;
pub mod rac;
pub mod worklink;

pub use commit_table::{CommitNode, CommitTable};
pub use ddl_table::DdlTable;
pub use flush::{FlushStats, FlushTarget, InvalidationFlush, LocalFlushTarget};
pub use home_location::HomeLocationMap;
pub use invalidation::{group_records, InvalidationGroup, InvalidationRecord};
pub use journal::{AnchorNode, Journal};
pub use mining::{MiningComponent, MiningStats};
pub use pipeline::DbimAdg;
pub use rac::{RacEndpoint, RacFlushTarget, RacMessage};
pub use worklink::Worklink;
