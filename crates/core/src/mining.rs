//! The Mining Component (paper §III.B).
//!
//! Piggybacks on the recovery workers via the [`ApplyObserver`] hooks:
//! every applied CV against an in-memory-enabled object yields an
//! invalidation record buffered in the IM-ADG Journal; transaction control
//! information maintains the journal anchors and the IM-ADG Commit Table;
//! DDL markers go to the DDL Information Table. The work done per CV is a
//! set-membership test plus one push into a per-worker area — the "thin
//! layer" the paper requires on the apply critical path.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use imadg_common::metrics::MiningMetrics;
use imadg_common::{CpuAccount, ObjectSet, Scn, TenantId, TxnId, WorkerId};
use imadg_recovery::ApplyObserver;
use imadg_redo::{CommitRecord, RedoMarker};
use imadg_storage::{ChangeOp, ChangeVector};

use crate::commit_table::{CommitNode, CommitTable};
use crate::ddl_table::DdlTable;
use crate::invalidation::InvalidationRecord;
use crate::journal::Journal;

/// Counters exposed for the mining-overhead ablation. Now the mining stage
/// of the pipeline-wide [`MetricsRegistry`](imadg_common::MetricsRegistry);
/// the old name stays as an alias for existing call sites.
pub type MiningStats = MiningMetrics;

/// The mining component of one standby (master) instance.
pub struct MiningComponent {
    journal: Arc<Journal>,
    commit_table: Arc<CommitTable>,
    ddl_table: Arc<DdlTable>,
    /// Objects enabled for population into the standby's IMCS.
    enabled: Arc<ObjectSet>,
    /// Mining busy time (part of the redo-apply overhead budget).
    pub cpu: CpuAccount,
    /// Event counters (shared with the pipeline metrics registry).
    pub stats: Arc<MiningMetrics>,
}

impl MiningComponent {
    /// Wire the mining component over its tables with a private stats
    /// instance.
    pub fn new(
        journal: Arc<Journal>,
        commit_table: Arc<CommitTable>,
        ddl_table: Arc<DdlTable>,
        enabled: Arc<ObjectSet>,
    ) -> MiningComponent {
        Self::with_metrics(journal, commit_table, ddl_table, enabled, Arc::default())
    }

    /// Wire the mining component reporting into a registry's mining stage.
    pub fn with_metrics(
        journal: Arc<Journal>,
        commit_table: Arc<CommitTable>,
        ddl_table: Arc<DdlTable>,
        enabled: Arc<ObjectSet>,
        stats: Arc<MiningMetrics>,
    ) -> MiningComponent {
        MiningComponent { journal, commit_table, ddl_table, enabled, cpu: CpuAccount::new(), stats }
    }

    /// The journal this component feeds.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// The commit table this component feeds.
    pub fn commit_table(&self) -> &Arc<CommitTable> {
        &self.commit_table
    }
}

impl ApplyObserver for MiningComponent {
    fn on_change(&self, worker: WorkerId, cv: &ChangeVector, _scn: Scn) {
        let _t = self.cpu.timer();
        self.stats.sniffed.fetch_add(1, Ordering::Relaxed);
        if !self.enabled.is_enabled(cv.object) {
            return;
        }
        let slot = match &cv.op {
            // Space-management CVs don't invalidate row data.
            ChangeOp::Format { .. } => return,
            op => op.slot().expect("row change has a slot"),
        };
        let anchor = self.journal.anchor_or_create(cv.txn, cv.tenant);
        anchor.add_record(
            worker,
            InvalidationRecord { object: cv.object, dba: cv.dba, slot, tenant: cv.tenant },
        );
        self.stats.mined.fetch_add(1, Ordering::Relaxed);
    }

    fn on_begin(&self, _worker: WorkerId, txn: TxnId, tenant: TenantId, _scn: Scn) {
        let _t = self.cpu.timer();
        self.journal.anchor_or_create(txn, tenant).mark_begin();
    }

    fn on_commit(&self, _worker: WorkerId, record: &CommitRecord) {
        let _t = self.cpu.timer();
        let anchor = self.journal.anchor(record.txn);
        // Skip transactions that provably touched nothing in-memory: the
        // specialized annotation says false AND nothing was mined. This is
        // the fast path that keeps the commit table small under pure-OLTP
        // load against non-IMCS objects.
        if record.modified_inmemory == Some(false) && anchor.is_none() {
            return;
        }
        self.commit_table.insert(CommitNode {
            txn: record.txn,
            tenant: record.tenant,
            commit_scn: record.commit_scn,
            modified_inmemory: record.modified_inmemory,
            anchor,
        });
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
    }

    fn on_abort(&self, _worker: WorkerId, txn: TxnId, _tenant: TenantId) {
        let _t = self.cpu.timer();
        if let Some(anchor) = self.journal.remove(txn) {
            self.stats.aborts.fetch_add(1, Ordering::Relaxed);
            self.stats
                .abort_discarded_records
                .fetch_add(anchor.record_count() as u64, Ordering::Relaxed);
        }
    }

    fn on_marker(&self, _worker: WorkerId, marker: &RedoMarker, scn: Scn) {
        let _t = self.cpu.timer();
        self.ddl_table.insert(scn, Arc::new(marker.clone()));
        self.stats.markers.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{Dba, ObjectId};
    use imadg_redo::DdlKind;
    use imadg_storage::{Row, Value};

    fn component() -> MiningComponent {
        let enabled = Arc::new(ObjectSet::new());
        enabled.enable(ObjectId(1));
        MiningComponent::new(
            Arc::new(Journal::new(16, 4)),
            Arc::new(CommitTable::new(2)),
            Arc::new(DdlTable::new()),
            enabled,
        )
    }

    fn cv(obj: u32, txn: u64, op: ChangeOp) -> ChangeVector {
        ChangeVector {
            dba: Dba(10),
            object: ObjectId(obj),
            tenant: TenantId::DEFAULT,
            txn: TxnId(txn),
            op,
        }
    }

    fn commit(txn: u64, scn: u64, flag: Option<bool>) -> CommitRecord {
        CommitRecord {
            txn: TxnId(txn),
            tenant: TenantId::DEFAULT,
            commit_scn: Scn(scn),
            modified_inmemory: flag,
        }
    }

    #[test]
    fn sniffs_only_enabled_objects() {
        let m = component();
        let row = Row::new(vec![Value::Int(1)]);
        m.on_change(WorkerId(0), &cv(1, 1, ChangeOp::Insert { slot: 0, row: row.clone() }), Scn(5));
        m.on_change(WorkerId(0), &cv(2, 1, ChangeOp::Insert { slot: 0, row }), Scn(6));
        assert_eq!(m.stats.sniffed.load(Ordering::Relaxed), 2);
        assert_eq!(m.stats.mined.load(Ordering::Relaxed), 1);
        assert_eq!(m.journal().total_records(), 1);
    }

    #[test]
    fn format_cvs_not_mined() {
        let m = component();
        m.on_change(WorkerId(0), &cv(1, 1, ChangeOp::Format { capacity: 8 }), Scn(5));
        assert_eq!(m.stats.mined.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn begin_marks_anchor() {
        let m = component();
        m.on_begin(WorkerId(0), TxnId(1), TenantId::DEFAULT, Scn(1));
        assert!(m.journal().anchor(TxnId(1)).unwrap().has_begin());
    }

    #[test]
    fn commit_links_anchor_into_commit_table() {
        let m = component();
        m.on_begin(WorkerId(0), TxnId(1), TenantId::DEFAULT, Scn(1));
        let row = Row::new(vec![Value::Int(1)]);
        m.on_change(WorkerId(1), &cv(1, 1, ChangeOp::Update { slot: 0, row }), Scn(2));
        m.on_commit(WorkerId(0), &commit(1, 3, Some(true)));
        assert_eq!(m.commit_table().len(), 1);
        let nodes = m.commit_table().chop(Scn(3));
        let anchor = nodes[0].anchor.as_ref().expect("anchor linked");
        assert_eq!(anchor.record_count(), 1);
        assert!(anchor.has_begin());
    }

    #[test]
    fn flagged_clean_commits_skip_the_table() {
        let m = component();
        m.on_commit(WorkerId(0), &commit(1, 3, Some(false)));
        assert!(m.commit_table().is_empty(), "clean txn needs no flush work");
        // Without annotation the node must be kept (pessimistic).
        m.on_commit(WorkerId(0), &commit(2, 4, None));
        assert_eq!(m.commit_table().len(), 1);
    }

    #[test]
    fn abort_discards_journal_state() {
        let m = component();
        let row = Row::new(vec![Value::Int(1)]);
        m.on_change(WorkerId(0), &cv(1, 1, ChangeOp::Insert { slot: 0, row }), Scn(2));
        assert_eq!(m.journal().len(), 1);
        m.on_abort(WorkerId(0), TxnId(1), TenantId::DEFAULT);
        assert!(m.journal().is_empty());
        assert_eq!(m.stats.aborts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn markers_buffered_in_ddl_table() {
        let m = component();
        let marker = RedoMarker {
            object: ObjectId(1),
            tenant: TenantId::DEFAULT,
            ddl: DdlKind::DropColumn { name: "x".into() },
        };
        m.on_marker(WorkerId(0), &marker, Scn(9));
        assert_eq!(m.stats.markers.load(Ordering::Relaxed), 1);
    }
}
