//! The DDL Information Table (paper §III.G).
//!
//! DDL redo markers mined from the redo stream are buffered here, "similar
//! to the IM-ADG Commit Table", and processed at QuerySCN advancement:
//! IMCUs of objects whose definition changed are dropped, and
//! dictionary-level changes are applied to the standby's catalog.

use std::collections::BTreeMap;
use std::sync::Arc;

use imadg_common::Scn;
use imadg_redo::RedoMarker;
use parking_lot::Mutex;

/// SCN-ordered buffer of mined DDL markers.
#[derive(Debug, Default)]
pub struct DdlTable {
    entries: Mutex<BTreeMap<(Scn, u64), Arc<RedoMarker>>>,
    seq: Mutex<u64>,
}

impl DdlTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer a marker mined at `scn`.
    pub fn insert(&self, scn: Scn, marker: Arc<RedoMarker>) {
        let mut seq = self.seq.lock();
        *seq += 1;
        self.entries.lock().insert((scn, *seq), marker);
    }

    /// Remove and return every marker at or below `upto`, in SCN order.
    pub fn take_upto(&self, upto: Scn) -> Vec<(Scn, Arc<RedoMarker>)> {
        let mut entries = self.entries.lock();
        let keep = entries.split_off(&(Scn(upto.0 + 1), 0));
        std::mem::replace(&mut *entries, keep).into_iter().map(|((scn, _), m)| (scn, m)).collect()
    }

    /// Number of buffered markers.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{ObjectId, TenantId};
    use imadg_redo::DdlKind;

    fn marker(obj: u32) -> Arc<RedoMarker> {
        Arc::new(RedoMarker {
            object: ObjectId(obj),
            tenant: TenantId::DEFAULT,
            ddl: DdlKind::DropColumn { name: "c".into() },
        })
    }

    #[test]
    fn take_upto_is_inclusive_and_ordered() {
        let t = DdlTable::new();
        t.insert(Scn(30), marker(3));
        t.insert(Scn(10), marker(1));
        t.insert(Scn(20), marker(2));
        assert_eq!(t.len(), 3);
        let taken = t.take_upto(Scn(20));
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].0, Scn(10));
        assert_eq!(taken[1].0, Scn(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn same_scn_markers_kept_in_mining_order() {
        let t = DdlTable::new();
        t.insert(Scn(5), marker(1));
        t.insert(Scn(5), marker(2));
        let taken = t.take_upto(Scn(5));
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].1.object, ObjectId(1));
        assert_eq!(taken[1].1.object, ObjectId(2));
        assert!(t.is_empty());
    }
}
