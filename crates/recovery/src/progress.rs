//! Apply-progress tracking across recovery workers.
//!
//! The recovery coordinator "tracks the progress of all the recovery worker
//! processes and establishes a consistency point up to which all workers
//! have completed redo apply" (paper §II.A). Each worker publishes the SCN
//! it has fully applied through; the candidate QuerySCN is the minimum.

use std::sync::atomic::{AtomicU64, Ordering};

use imadg_common::{Scn, WorkerId};

/// Shared per-worker applied-SCN vector.
#[derive(Debug)]
pub struct Progress {
    applied: Vec<AtomicU64>,
}

impl Progress {
    /// Tracker for `workers` workers, all at SCN 0.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0);
        Progress { applied: (0..workers).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.applied.len()
    }

    /// Worker `w` has applied everything at or below `scn`.
    pub fn report(&self, w: WorkerId, scn: Scn) {
        debug_assert!((w.0 as usize) < self.applied.len());
        self.applied[w.0 as usize].fetch_max(scn.0, Ordering::AcqRel);
    }

    /// SCN applied by worker `w`.
    pub fn of(&self, w: WorkerId) -> Scn {
        Scn(self.applied[w.0 as usize].load(Ordering::Acquire))
    }

    /// The consistency-point candidate: min over workers.
    pub fn min(&self) -> Scn {
        Scn(self.applied.iter().map(|a| a.load(Ordering::Acquire)).min().unwrap_or(0))
    }

    /// The fastest worker's SCN (diagnostics: QuerySCN "leapfrogging" is
    /// the gap between min and max).
    pub fn max(&self) -> Scn {
        Scn(self.applied.iter().map(|a| a.load(Ordering::Acquire)).max().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_over_workers() {
        let p = Progress::new(3);
        assert_eq!(p.min(), Scn::ZERO);
        p.report(WorkerId(0), Scn(10));
        p.report(WorkerId(1), Scn(5));
        p.report(WorkerId(2), Scn(20));
        assert_eq!(p.min(), Scn(5));
        assert_eq!(p.max(), Scn(20));
        assert_eq!(p.of(WorkerId(0)), Scn(10));
    }

    #[test]
    fn report_is_monotonic() {
        let p = Progress::new(1);
        p.report(WorkerId(0), Scn(10));
        p.report(WorkerId(0), Scn(7)); // stale report ignored
        assert_eq!(p.min(), Scn(10));
    }
}
