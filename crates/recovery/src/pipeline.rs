//! Media-recovery pipeline assembly: receivers → log merger → dispatcher →
//! recovery workers → coordinator.
//!
//! The pipeline runs in two modes with identical logic:
//! * **step mode** — [`MediaRecovery::pump`] drains every stage on the
//!   caller's thread in a fixed order, or [`MediaRecovery::register_stages`]
//!   hands the stages to a seeded `StepScheduler` for randomized
//!   interleavings (tests);
//! * **threaded mode** — [`MediaRecovery::start`] registers the same stages
//!   with the shared runtime's threaded scheduler: the ingest stage wakes
//!   the workers, the workers wake the coordinator, and an error or panic
//!   in any stage trips the pipeline health state instead of dying in a
//!   detached thread.

use std::sync::Arc;
use std::time::Duration;

use imadg_common::metrics::{ApplyMetrics, MergerMetrics, RuntimeMetrics, StalenessTracker};
use imadg_common::{
    CpuAccount, MetricsRegistry, QueryScnCell, QuiesceLock, RecoveryConfig, Result, Runtime,
    RuntimeHealth, Scn, Stage, StageId, StageOutcome, ThreadedRuntime, WorkerId,
};
use imadg_redo::{LogMerger, RedoPayload, RedoSource};
use imadg_storage::Store;
use parking_lot::Mutex;

use crate::coordinator::{AdvanceHook, Coordinator};
use crate::dispatch::Dispatcher;
use crate::observer::{ApplyObserver, CoopHelper};
use crate::progress::Progress;
use crate::worker::{work_queue, Worker};

/// The standby's media-recovery engine.
pub struct MediaRecovery {
    receivers: Mutex<Vec<Box<dyn RedoSource>>>,
    /// Latched when a drain performed link protocol work (ACK/NAK) even
    /// though no records came out; consumed by the ingest stage so gap
    /// resolution counts as progress under the step scheduler.
    protocol_activity: std::sync::atomic::AtomicBool,
    merger: Mutex<LogMerger>,
    dispatcher: Mutex<Dispatcher>,
    workers: Vec<Arc<Mutex<Worker>>>,
    progress: Arc<Progress>,
    coordinator: Arc<Coordinator>,
    /// Busy time of the ingest/merge/dispatch stage.
    pub ingest_cpu: CpuAccount,
    merger_metrics: Arc<MergerMetrics>,
    apply_metrics: Arc<ApplyMetrics>,
    runtime_metrics: Arc<RuntimeMetrics>,
    staleness: Arc<StalenessTracker>,
}

impl MediaRecovery {
    /// Assemble the pipeline.
    ///
    /// * `receivers` — one [`RedoSource`] per primary redo thread (RAC
    ///   streams): in-process channels, framed links, or TCP endpoints.
    /// * `observers` — mining hooks fired by every worker.
    /// * `coop` — cooperative-flush helper, or `None` when DBIM-on-ADG is
    ///   disabled / cooperative flush is ablated.
    /// * `hook` — the invalidation flush run during QuerySCN advancement.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: &RecoveryConfig,
        store: Arc<Store>,
        receivers: Vec<Box<dyn RedoSource>>,
        observers: Vec<Arc<dyn ApplyObserver>>,
        coop: Option<Arc<dyn CoopHelper>>,
        hook: Arc<dyn AdvanceHook>,
        query_scn: Arc<QueryScnCell>,
        quiesce: Arc<QuiesceLock>,
    ) -> Result<Arc<MediaRecovery>> {
        Self::with_metrics(
            config,
            store,
            receivers,
            observers,
            coop,
            hook,
            query_scn,
            quiesce,
            &MetricsRegistry::default(),
        )
    }

    /// Assemble the pipeline reporting into the merger/apply/flush stages
    /// and trace ring of `registry`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_metrics(
        config: &RecoveryConfig,
        store: Arc<Store>,
        mut receivers: Vec<Box<dyn RedoSource>>,
        observers: Vec<Arc<dyn ApplyObserver>>,
        coop: Option<Arc<dyn CoopHelper>>,
        hook: Arc<dyn AdvanceHook>,
        query_scn: Arc<QueryScnCell>,
        quiesce: Arc<QuiesceLock>,
        registry: &MetricsRegistry,
    ) -> Result<Arc<MediaRecovery>> {
        config.validate()?;
        for rx in receivers.iter_mut() {
            rx.bind_durability_metrics(registry.durability.clone());
        }
        let streams = receivers.len().max(1);
        let progress = Arc::new(Progress::new(config.workers));
        let mut senders = Vec::with_capacity(config.workers);
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let (tx, rx) = work_queue();
            senders.push(tx);
            let mut w = Worker::new(WorkerId(i as u16), rx, store.clone(), observers.clone());
            w.set_metrics(registry.apply.clone());
            w.set_staleness(registry.staleness.clone());
            if let Some(h) = &coop {
                if config.cooperative_flush {
                    w.set_coop(h.clone(), 64, config.coop_flush_batch);
                }
            }
            workers.push(Arc::new(Mutex::new(w)));
        }
        let coordinator = Arc::new(Coordinator::with_metrics(
            progress.clone(),
            query_scn,
            quiesce,
            hook,
            registry.flush.clone(),
            registry.staleness.clone(),
            registry.trace.clone(),
        ));
        Ok(Arc::new(MediaRecovery {
            receivers: Mutex::new(receivers),
            protocol_activity: std::sync::atomic::AtomicBool::new(false),
            merger: Mutex::new(LogMerger::new(streams)),
            dispatcher: Mutex::new(Dispatcher::new(senders, store.clone())),
            workers,
            progress,
            coordinator,
            ingest_cpu: CpuAccount::new(),
            merger_metrics: registry.merger.clone(),
            apply_metrics: registry.apply.clone(),
            runtime_metrics: registry.runtime.clone(),
            staleness: registry.staleness.clone(),
        }))
    }

    /// The coordinator (QuerySCN access, advancement stats).
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// Install the checkpoint mining gate on every worker: DML at or below
    /// `gate` was mined and journaled before the checkpoint this replay
    /// starts from, so its observer hooks are skipped (store side effects
    /// still apply). Used on the restart-from-disk path.
    pub fn set_mine_gate(&self, gate: Scn, metrics: Arc<imadg_common::metrics::DurabilityMetrics>) {
        for w in &self.workers {
            w.lock().set_mine_gate(gate, metrics.clone());
        }
    }

    /// Shared apply-progress tracker.
    pub fn progress(&self) -> &Arc<Progress> {
        &self.progress
    }

    /// Per-worker CPU accounts (apply busy time).
    pub fn worker_cpu(&self) -> Vec<CpuAccount> {
        self.workers.iter().map(|w| w.lock().cpu.clone()).collect()
    }

    /// Ingest available redo from the transport into the merger and
    /// dispatch whatever became releasable. Returns items dispatched.
    /// Link protocol work performed while draining (ACKs, NAKs) is
    /// recorded and retrievable via [`MediaRecovery::take_protocol_activity`].
    pub fn ingest_once(&self) -> Result<usize> {
        let _t = self.ingest_cpu.timer();
        let mut receivers = self.receivers.lock();
        let mut merger = self.merger.lock();
        for (i, rx) in receivers.iter_mut().enumerate() {
            let records = rx.drain_ready()?;
            if rx.take_protocol_activity() {
                self.protocol_activity.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            // Group commit of the standby redo tee: one fsync per ingest
            // quantum covers every batch this drain delivered, and the
            // archiver quantum moves sealed segments to the archive tier.
            if rx.durable_sync()? {
                self.protocol_activity.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            if let Some(log) = rx.durable_log() {
                if log.archive_pending() {
                    log.archive_sealed()?;
                }
            }
            if !records.is_empty() {
                let heartbeats =
                    records.iter().filter(|r| matches!(r.payload, RedoPayload::Heartbeat)).count();
                self.merger_metrics.heartbeats_seen.add(heartbeats as u64);
                self.merger_metrics.merge_batches.inc();
                for r in &records {
                    if matches!(r.payload, RedoPayload::Commit(_)) {
                        self.staleness.on_receive(r.scn.0, r.born_us);
                    }
                }
                merger.push(i, records);
            }
        }
        let ready = merger.pop_ready();
        drop(merger);
        drop(receivers);
        if ready.is_empty() {
            return Ok(0);
        }
        for r in &ready {
            if matches!(r.payload, RedoPayload::Commit(_)) {
                self.staleness.on_merge(r.scn.0);
            }
        }
        // pop_ready only releases data records (heartbeats are swallowed),
        // so merger output == dispatcher input — the conservation identity.
        self.merger_metrics.records_merged.add(ready.len() as u64);
        self.apply_metrics.records_dispatched.add(ready.len() as u64);
        self.dispatcher.lock().dispatch(ready)
    }

    /// Run every worker's queue to exhaustion (step mode).
    pub fn drain_workers(&self) -> Result<usize> {
        let mut total = 0usize;
        for w in &self.workers {
            let mut guard = w.lock();
            let n = guard.run_batch(usize::MAX)?;
            self.progress.report(guard.id, guard.applied_through());
            total += n;
        }
        Ok(total)
    }

    /// One full synchronous pass: ingest → apply → advance. Returns true
    /// when any stage made progress.
    pub fn pump(&self) -> Result<bool> {
        let dispatched = self.ingest_once()?;
        let applied = self.drain_workers()?;
        let advanced = self.coordinator.try_advance().is_some();
        Ok(dispatched > 0 || applied > 0 || advanced)
    }

    /// Pump until the pipeline is fully drained (step mode).
    pub fn pump_until_idle(&self) -> Result<()> {
        while self.pump()? {}
        Ok(())
    }

    /// Register the pipeline's stages — ingest/merge/dispatch, one apply
    /// stage per worker, and the advancement coordinator — with `rt`,
    /// wiring the producer→consumer wake edges (ingest wakes workers,
    /// workers wake the coordinator). Failures are recorded in this
    /// pipeline's registry health cell.
    pub fn register_stages(self: &Arc<Self>, rt: &mut Runtime) -> RecoveryStageIds {
        let health = self.runtime_metrics.health.clone();
        let ingest = rt.register_with_health(
            Arc::new(IngestStage(self.clone())),
            self.runtime_metrics.stage("merger"),
            health.clone(),
        );
        let coordinator = rt.register_with_health(
            Arc::new(CoordinatorStage(self.clone())),
            self.runtime_metrics.stage("flush"),
            health.clone(),
        );
        let mut workers = Vec::with_capacity(self.workers.len());
        for (i, w) in self.workers.iter().enumerate() {
            let id = rt.register_with_health(
                Arc::new(WorkerStage {
                    name: format!("apply.{i}"),
                    worker: w.clone(),
                    progress: self.progress.clone(),
                }),
                self.runtime_metrics.stage(&format!("apply.{i}")),
                health.clone(),
            );
            rt.wire(ingest, id);
            rt.wire(id, coordinator);
            workers.push(id);
        }
        RecoveryStageIds { ingest, workers, coordinator }
    }

    /// Spawn background threads for the recovery stages alone (standalone
    /// pipelines; `StandbyCluster` registers into a wider runtime instead).
    /// Returns a guard that drains and joins them on drop.
    pub fn start(self: &Arc<Self>) -> RecoveryThreads {
        let mut rt = Runtime::with_health(self.runtime_metrics.health.clone());
        self.register_stages(&mut rt);
        RecoveryThreads { inner: Some(rt.start_threaded()) }
    }

    /// Current pipeline health (`Failed` once any stage errors or panics).
    pub fn health(&self) -> RuntimeHealth {
        self.runtime_metrics.health.get()
    }

    /// Applied SCN (the coordinator's consistency-point candidate).
    pub fn applied_scn(&self) -> Scn {
        self.progress.min()
    }

    /// Refresh the sampled merger/apply gauges (held-back depth, watermark,
    /// stream skew, applied/shipped SCNs, apply lag, QuerySCN). Called by
    /// the owner just before a registry snapshot.
    pub fn refresh_gauges(&self) {
        let (held_back, watermark, max_seen, skew) = {
            let m = self.merger.lock();
            (m.held_back() as u64, m.watermark().0, m.max_seen().0, m.stream_skew())
        };
        self.merger_metrics.held_back.set(held_back);
        self.merger_metrics.watermark.set(watermark);
        self.merger_metrics.stream_skew.set(skew);
        let applied = self.progress.min().0;
        self.apply_metrics.applied_scn.set(applied);
        self.apply_metrics.shipped_scn.set(max_seen);
        self.apply_metrics.apply_lag.set(max_seen.saturating_sub(applied));
        let query_scn = self.coordinator.query_scn().get().map_or(0, |s| s.0);
        self.apply_metrics.query_scn.set(query_scn);
    }

    /// Detach the redo receivers from this (stopped) pipeline so a restarted
    /// standby instance can resume recovery on the same links. Models an
    /// ADG instance restart: storage persists, in-memory state is lost.
    pub fn take_receivers(&self) -> Vec<Box<dyn RedoSource>> {
        std::mem::take(&mut *self.receivers.lock())
    }

    /// Consume the "a drain did link protocol work" latch (ACKs/NAKs sent
    /// with no records released). Protocol work counts as stage progress:
    /// gap resolution must keep the step scheduler driving the pipeline.
    pub fn take_protocol_activity(&self) -> bool {
        self.protocol_activity.swap(false, std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether any redo source still holds undelivered transport state —
    /// a latent batch in flight, an open gap, or out-of-order frames
    /// buffered. Quiesce checks must not declare the standby caught up
    /// while this is true.
    pub fn transport_pending(&self) -> bool {
        self.receivers.lock().iter().any(|r| r.transport_pending())
    }

    /// The soonest delivery deadline across sources holding a latent
    /// batch, if any. Drives the ingest stage's park hint so delayed redo
    /// is picked up right when it becomes due instead of on a poll tick.
    pub fn next_transport_deadline(&self) -> Option<Duration> {
        self.receivers.lock().iter().filter_map(|r| r.time_to_next()).min()
    }
}

/// Stage ids handed back by [`MediaRecovery::register_stages`], for wiring
/// additional wake edges (population, cross-side tokens).
pub struct RecoveryStageIds {
    /// The ingest/merge/dispatch stage.
    pub ingest: StageId,
    /// One apply stage per recovery worker.
    pub workers: Vec<StageId>,
    /// The QuerySCN-advancement coordinator stage.
    pub coordinator: StageId,
}

/// Ingest/merge/dispatch as a runtime stage (metrics id `merger`). Woken by
/// the transport sender when a shipped batch is deliverable *now*; for
/// batches still in flight on a latency link the park hint re-arms the
/// stage for the exact delivery deadline, so a latent send never wakes the
/// stage early (no spurious wakeups).
struct IngestStage(Arc<MediaRecovery>);

impl Stage for IngestStage {
    fn name(&self) -> &str {
        "merger"
    }

    fn run_once(&self) -> Result<StageOutcome> {
        let dispatched = self.0.ingest_once()?;
        Ok(if dispatched > 0 || self.0.take_protocol_activity() {
            StageOutcome::Progress
        } else {
            StageOutcome::Idle
        })
    }

    fn park_hint(&self) -> Duration {
        self.0.next_transport_deadline().unwrap_or(Duration::from_micros(500))
    }

    fn input_pending(&self) -> Option<bool> {
        Some(self.0.transport_pending())
    }
}

/// QuerySCN advancement as a runtime stage (metrics id `flush`). Woken by
/// worker progress.
struct CoordinatorStage(Arc<MediaRecovery>);

impl Stage for CoordinatorStage {
    fn name(&self) -> &str {
        "flush"
    }

    fn run_once(&self) -> Result<StageOutcome> {
        Ok(if self.0.coordinator.try_advance().is_some() {
            StageOutcome::Progress
        } else {
            StageOutcome::Idle
        })
    }
}

/// One recovery worker's apply loop as a runtime stage (metrics id
/// `apply.N`). Woken by the ingest stage on every dispatch.
struct WorkerStage {
    name: String,
    worker: Arc<Mutex<Worker>>,
    progress: Arc<Progress>,
}

impl Stage for WorkerStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn run_once(&self) -> Result<StageOutcome> {
        let mut guard = self.worker.lock();
        let n = guard.run_batch(1024)?;
        let (id, through) = (guard.id, guard.applied_through());
        drop(guard);
        self.progress.report(id, through);
        Ok(if n > 0 { StageOutcome::Progress } else { StageOutcome::Idle })
    }
}

/// Guard over a standalone recovery pipeline's background threads.
pub struct RecoveryThreads {
    inner: Option<ThreadedRuntime>,
}

impl RecoveryThreads {
    /// Drain every stage, join the threads, and return the final health.
    pub fn shutdown(mut self) -> RuntimeHealth {
        self.inner.take().expect("threads joined once").shutdown()
    }
}
