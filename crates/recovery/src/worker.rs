//! Recovery worker processes.
//!
//! Each worker owns a FIFO queue of work items dispatched to it by DBA hash
//! (paper Fig. 3), applies them in SCN order, fires the mining observers,
//! reports its progress, and periodically offers cooperative-flush help
//! (§III.D.2).

use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender, TryRecvError};
use imadg_common::metrics::{ApplyMetrics, Counter as CvCounter, DurabilityMetrics};
use imadg_common::{CpuAccount, Result, Scn, TenantId, TxnId, WorkerId};
use imadg_redo::{CommitRecord, RedoMarker};
use imadg_storage::{ChangeVector, Store};

use crate::observer::{ApplyObserver, CoopHelper, NoopHelper};

/// One unit of work on a worker queue.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// Apply a change vector generated at `scn`.
    Change {
        /// Record SCN.
        scn: Scn,
        /// The change vector.
        cv: ChangeVector,
    },
    /// Apply a begin control record.
    Begin {
        /// Record SCN.
        scn: Scn,
        /// Starting transaction.
        txn: TxnId,
        /// Owning tenant.
        tenant: TenantId,
    },
    /// Apply a commit record ("commit CV to the special block").
    Commit {
        /// Record SCN (equals the commit SCN).
        scn: Scn,
        /// The commit record.
        record: CommitRecord,
    },
    /// Apply an abort record.
    Abort {
        /// Record SCN.
        scn: Scn,
        /// Aborting transaction.
        txn: TxnId,
        /// Owning tenant.
        tenant: TenantId,
    },
    /// Apply a DDL redo marker.
    Marker {
        /// Record SCN.
        scn: Scn,
        /// The marker.
        marker: Arc<RedoMarker>,
    },
    /// No-op carrying "everything at or below `0` is dispatched": advances
    /// the worker's progress past SCN gaps it received no work for.
    Watermark(Scn),
}

impl WorkItem {
    /// The SCN this item advances the worker to once applied.
    pub fn scn(&self) -> Scn {
        match self {
            WorkItem::Change { scn, .. }
            | WorkItem::Begin { scn, .. }
            | WorkItem::Commit { scn, .. }
            | WorkItem::Abort { scn, .. }
            | WorkItem::Marker { scn, .. }
            | WorkItem::Watermark(scn) => *scn,
        }
    }
}

/// A recovery worker: queue consumer + apply engine.
pub struct Worker {
    /// This worker's id.
    pub id: WorkerId,
    rx: Receiver<WorkItem>,
    store: Arc<Store>,
    observers: Vec<Arc<dyn ApplyObserver>>,
    helper: Arc<dyn CoopHelper>,
    /// Busy-time account (redo-apply CPU, §IV.C).
    pub cpu: CpuAccount,
    /// How many items between cooperative-flush checks.
    coop_check_every: usize,
    /// Budget of worklink nodes flushed per cooperative visit.
    coop_budget: usize,
    last_applied: Scn,
    applied_items: u64,
    /// Apply-stage metrics (shared item counter).
    metrics: Option<Arc<ApplyMetrics>>,
    /// This worker's CVs-applied counter from the registry.
    cv_counter: Option<Arc<CvCounter>>,
    /// Mining gate: DML records at or below this SCN were already mined
    /// and journaled before the last checkpoint, so replay after a restart
    /// skips their observer (mining) hooks while still applying the store
    /// side effects — commit-SCN stamping must rerun for visibility.
    /// DDL markers and watermarks are never gated.
    mine_gate: Scn,
    durability_metrics: Arc<DurabilityMetrics>,
    /// Stamps the apply point of commit records, when attached.
    staleness: Option<Arc<imadg_common::metrics::StalenessTracker>>,
}

/// Create the queue for one worker.
pub fn work_queue() -> (Sender<WorkItem>, Receiver<WorkItem>) {
    crossbeam::channel::unbounded()
}

impl Worker {
    /// Build a worker over its queue.
    pub fn new(
        id: WorkerId,
        rx: Receiver<WorkItem>,
        store: Arc<Store>,
        observers: Vec<Arc<dyn ApplyObserver>>,
    ) -> Worker {
        Worker {
            id,
            rx,
            store,
            observers,
            helper: Arc::new(NoopHelper),
            cpu: CpuAccount::new(),
            coop_check_every: 64,
            coop_budget: 32,
            last_applied: Scn::ZERO,
            applied_items: 0,
            metrics: None,
            cv_counter: None,
            mine_gate: Scn::ZERO,
            durability_metrics: Arc::default(),
            staleness: None,
        }
    }

    /// Record commit-record apply stamps into `tracker`.
    pub fn set_staleness(&mut self, tracker: Arc<imadg_common::metrics::StalenessTracker>) {
        self.staleness = Some(tracker);
    }

    /// Install the checkpoint mining gate (restart replay path).
    pub fn set_mine_gate(&mut self, gate: Scn, metrics: Arc<DurabilityMetrics>) {
        self.mine_gate = gate;
        self.durability_metrics = metrics;
    }

    /// Whether a DML record at `scn` should fire the mining observers, or
    /// was already mined before the checkpoint this replay starts from.
    fn mines(&self, scn: Scn) -> bool {
        if scn > self.mine_gate {
            true
        } else {
            self.durability_metrics.mining_skipped.inc();
            false
        }
    }

    /// Install the cooperative-flush helper (the invalidation flush
    /// component) and its batching knobs.
    pub fn set_coop(&mut self, helper: Arc<dyn CoopHelper>, check_every: usize, budget: usize) {
        self.helper = helper;
        self.coop_check_every = check_every.max(1);
        self.coop_budget = budget.max(1);
    }

    /// Report applied items into a registry's apply stage, including this
    /// worker's per-worker CV counter.
    pub fn set_metrics(&mut self, metrics: Arc<ApplyMetrics>) {
        self.cv_counter = Some(metrics.worker_counter(self.id.0 as usize));
        self.metrics = Some(metrics);
    }

    /// SCN this worker has applied through.
    pub fn applied_through(&self) -> Scn {
        self.last_applied
    }

    /// Total items applied (diagnostics).
    pub fn applied_items(&self) -> u64 {
        self.applied_items
    }

    /// Apply up to `max` queued items; returns how many were applied.
    /// Progress is reported through the returned high-SCN; the caller (the
    /// pipeline) forwards it to the shared [`crate::Progress`] tracker.
    pub fn run_batch(&mut self, max: usize) -> Result<usize> {
        let cpu = self.cpu.clone();
        let _t = cpu.timer();
        let mut n = 0usize;
        while n < max {
            let item = match self.rx.try_recv() {
                Ok(i) => i,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            };
            self.apply(item)?;
            n += 1;
            if n.is_multiple_of(self.coop_check_every) {
                // Periodic cooperative-flush visit (paper §III.D.2).
                self.helper.help_flush(self.coop_budget);
            }
        }
        // Offer help even when the queue is idle: a worklink may exist while
        // no new redo is flowing to this worker.
        self.helper.help_flush(self.coop_budget);
        Ok(n)
    }

    fn apply(&mut self, item: WorkItem) -> Result<()> {
        let scn = item.scn();
        debug_assert!(scn >= self.last_applied, "worker queue must be SCN-ordered");
        match item {
            WorkItem::Change { scn, cv } => {
                self.store.apply_cv(&cv, scn)?;
                if let Some(c) = &self.cv_counter {
                    c.inc();
                }
                if self.mines(scn) {
                    for o in &self.observers {
                        o.on_change(self.id, &cv, scn);
                    }
                }
            }
            WorkItem::Begin { scn, txn, tenant } => {
                self.store.txns().begin(txn);
                if self.mines(scn) {
                    for o in &self.observers {
                        o.on_begin(self.id, txn, tenant, scn);
                    }
                }
            }
            WorkItem::Commit { scn, record } => {
                self.store.txns().commit(record.txn, record.commit_scn);
                if let Some(t) = &self.staleness {
                    t.on_apply(scn.0);
                }
                if self.mines(scn) {
                    for o in &self.observers {
                        o.on_commit(self.id, &record);
                    }
                }
            }
            WorkItem::Abort { scn, txn, tenant } => {
                self.store.txns().abort(txn);
                if self.mines(scn) {
                    for o in &self.observers {
                        o.on_abort(self.id, txn, tenant);
                    }
                }
            }
            WorkItem::Marker { scn, marker } => {
                // CREATE TABLE is a physical dictionary change: it must be
                // applied inline, before the table's first CV arrives at any
                // worker. Other DDLs are dictionary-only and take effect at
                // QuerySCN advancement via the DDL Information Table (§III.G).
                if let imadg_redo::DdlKind::CreateTable(spec) = &marker.ddl {
                    // Idempotent on replay after restart.
                    let _ = self.store.create_table(spec.clone());
                }
                for o in &self.observers {
                    o.on_marker(self.id, &marker, scn);
                }
            }
            WorkItem::Watermark(_) => {}
        }
        self.last_applied = self.last_applied.max(scn);
        self.applied_items += 1;
        if let Some(m) = &self.metrics {
            m.items_applied.inc();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{Dba, ObjectId};
    use imadg_storage::{ChangeOp, ColumnType, Row, Schema, TableSpec, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn store() -> Arc<Store> {
        let s = Arc::new(Store::new());
        s.create_table(TableSpec {
            id: ObjectId(1),
            name: "t".into(),
            tenant: TenantId::DEFAULT,
            schema: Schema::of(&[("id", ColumnType::Int)]),
            key_ordinal: 0,
            rows_per_block: 8,
        })
        .unwrap();
        s
    }

    struct Counter(AtomicUsize);
    impl ApplyObserver for Counter {
        fn on_change(&self, _: WorkerId, _: &ChangeVector, _: Scn) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn applies_changes_and_fires_observers() {
        let s = store();
        let (tx, rx) = work_queue();
        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        let mut w = Worker::new(WorkerId(0), rx, s.clone(), vec![counter.clone()]);

        let cv_fmt = ChangeVector {
            dba: Dba(1),
            object: ObjectId(1),
            tenant: TenantId::DEFAULT,
            txn: TxnId(1),
            op: ChangeOp::Format { capacity: 8 },
        };
        let cv_ins = ChangeVector {
            dba: Dba(1),
            object: ObjectId(1),
            tenant: TenantId::DEFAULT,
            txn: TxnId(1),
            op: ChangeOp::Insert { slot: 0, row: Row::new(vec![Value::Int(7)]) },
        };
        tx.send(WorkItem::Begin { scn: Scn(1), txn: TxnId(1), tenant: TenantId::DEFAULT }).unwrap();
        tx.send(WorkItem::Change { scn: Scn(2), cv: cv_fmt }).unwrap();
        tx.send(WorkItem::Change { scn: Scn(3), cv: cv_ins }).unwrap();
        tx.send(WorkItem::Commit {
            scn: Scn(4),
            record: CommitRecord {
                txn: TxnId(1),
                tenant: TenantId::DEFAULT,
                commit_scn: Scn(4),
                modified_inmemory: Some(false),
            },
        })
        .unwrap();
        tx.send(WorkItem::Watermark(Scn(9))).unwrap();

        let n = w.run_batch(usize::MAX).unwrap();
        assert_eq!(n, 5);
        assert_eq!(w.applied_through(), Scn(9));
        assert_eq!(counter.0.load(Ordering::Relaxed), 2);
        assert_eq!(
            s.fetch_by_key(ObjectId(1), 7, Scn(4), None).unwrap().unwrap().1[0],
            Value::Int(7)
        );
    }

    #[test]
    fn batch_limit_respected() {
        let s = store();
        let (tx, rx) = work_queue();
        let mut w = Worker::new(WorkerId(0), rx, s, vec![]);
        for i in 1..=10u64 {
            tx.send(WorkItem::Watermark(Scn(i))).unwrap();
        }
        assert_eq!(w.run_batch(3).unwrap(), 3);
        assert_eq!(w.applied_through(), Scn(3));
        assert_eq!(w.run_batch(usize::MAX).unwrap(), 7);
        assert_eq!(w.applied_through(), Scn(10));
        assert_eq!(w.applied_items(), 10);
    }

    /// Replaying below the mine gate skips observers but still applies
    /// store effects: the committed row is visible, no mining hook fires.
    #[test]
    fn mine_gate_skips_observers_but_applies_store_effects() {
        let s = store();
        let (tx, rx) = work_queue();
        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        let mut w = Worker::new(WorkerId(0), rx, s.clone(), vec![counter.clone()]);
        let dm: Arc<DurabilityMetrics> = Arc::default();
        w.set_mine_gate(Scn(4), dm.clone());

        let cv_fmt = ChangeVector {
            dba: Dba(1),
            object: ObjectId(1),
            tenant: TenantId::DEFAULT,
            txn: TxnId(1),
            op: ChangeOp::Format { capacity: 8 },
        };
        let cv_ins = ChangeVector {
            dba: Dba(1),
            object: ObjectId(1),
            tenant: TenantId::DEFAULT,
            txn: TxnId(1),
            op: ChangeOp::Insert { slot: 0, row: Row::new(vec![Value::Int(7)]) },
        };
        tx.send(WorkItem::Begin { scn: Scn(1), txn: TxnId(1), tenant: TenantId::DEFAULT }).unwrap();
        tx.send(WorkItem::Change { scn: Scn(2), cv: cv_fmt }).unwrap();
        tx.send(WorkItem::Change { scn: Scn(3), cv: cv_ins.clone() }).unwrap();
        tx.send(WorkItem::Commit {
            scn: Scn(4),
            record: CommitRecord {
                txn: TxnId(1),
                tenant: TenantId::DEFAULT,
                commit_scn: Scn(4),
                modified_inmemory: Some(false),
            },
        })
        .unwrap();
        // Past the gate: mined normally.
        tx.send(WorkItem::Change { scn: Scn(5), cv: cv_ins }).unwrap();

        w.run_batch(usize::MAX).unwrap();
        assert_eq!(counter.0.load(Ordering::Relaxed), 1, "only the post-gate change mined");
        assert_eq!(dm.mining_skipped.get(), 4, "pre-gate begin/changes/commit skipped");
        assert_eq!(
            s.fetch_by_key(ObjectId(1), 7, Scn(4), None).unwrap().unwrap().1[0],
            Value::Int(7),
            "replayed commit is visible: store effects were never gated"
        );
    }

    struct HelpCounter(AtomicUsize);
    impl CoopHelper for HelpCounter {
        fn help_flush(&self, _b: usize) -> usize {
            self.0.fetch_add(1, Ordering::Relaxed);
            0
        }
    }

    #[test]
    fn cooperative_help_offered() {
        let s = store();
        let (tx, rx) = work_queue();
        let mut w = Worker::new(WorkerId(0), rx, s, vec![]);
        let h = Arc::new(HelpCounter(AtomicUsize::new(0)));
        w.set_coop(h.clone(), 2, 4);
        for i in 1..=5u64 {
            tx.send(WorkItem::Watermark(Scn(i))).unwrap();
        }
        w.run_batch(usize::MAX).unwrap();
        // Checks at items 2 and 4, plus the end-of-batch offer.
        assert_eq!(h.0.load(Ordering::Relaxed), 3);
    }
}
