//! The recovery coordinator: QuerySCN advancement.
//!
//! The coordinator establishes consistency points: when all workers have
//! applied redo through SCN `S`, it (1) enters the quiesce period, (2) asks
//! the invalidation-flush hook to flush every invalidation belonging to
//! transactions with commit SCN ≤ `S` (paper §III.D), (3) publishes `S` as
//! the new QuerySCN and leaves the quiesce period. QuerySCNs *leapfrog*:
//! consecutive published values can be far apart.

use std::sync::Arc;
use std::time::Instant;

use imadg_common::metrics::{FlushMetrics, StalenessTracker, TraceStage};
use imadg_common::{LatencyStats, PipelineTrace, QueryScnCell, QuiesceLock, Scn};
use parking_lot::Mutex;

use crate::progress::Progress;

/// Hook invoked under quiesce before a new QuerySCN is published.
///
/// `imadg-core`'s Invalidation Flush Component implements this: it chops
/// the IM-ADG Commit Table into a worklink and drains it (cooperatively
/// with the recovery workers) to the SMUs.
pub trait AdvanceHook: Send + Sync {
    /// Flush everything needed for queries at `target` to be consistent.
    /// Runs with the quiesce lock held; must complete the flush before
    /// returning.
    fn flush_for_advance(&self, target: Scn);
}

/// Hook that flushes nothing (recovery without DBIM-on-ADG).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopAdvanceHook;

impl AdvanceHook for NoopAdvanceHook {
    fn flush_for_advance(&self, _target: Scn) {}
}

/// The recovery coordinator.
pub struct Coordinator {
    progress: Arc<Progress>,
    query_scn: Arc<QueryScnCell>,
    quiesce: Arc<QuiesceLock>,
    hook: Arc<dyn AdvanceHook>,
    /// Latency of each advancement (flush + publish), for the ablation
    /// benches on cooperative flush (§III.D.2).
    advance_latency: Mutex<LatencyStats>,
    advances: Mutex<u64>,
    /// Flush-stage metrics (advancement counters, quiesce durations).
    metrics: Arc<FlushMetrics>,
    /// Commit-to-queryable staleness: settles every in-flight commit at or
    /// below the published SCN.
    staleness: Arc<StalenessTracker>,
    /// Pipeline trace ring; every advancement records an event.
    trace: PipelineTrace,
}

impl Coordinator {
    /// Build a coordinator with private metrics.
    pub fn new(
        progress: Arc<Progress>,
        query_scn: Arc<QueryScnCell>,
        quiesce: Arc<QuiesceLock>,
        hook: Arc<dyn AdvanceHook>,
    ) -> Self {
        Self::with_metrics(
            progress,
            query_scn,
            quiesce,
            hook,
            Arc::default(),
            Arc::default(),
            PipelineTrace::new(1),
        )
    }

    /// Build a coordinator reporting into a registry's flush stage,
    /// staleness tracker, and trace ring.
    #[allow(clippy::too_many_arguments)]
    pub fn with_metrics(
        progress: Arc<Progress>,
        query_scn: Arc<QueryScnCell>,
        quiesce: Arc<QuiesceLock>,
        hook: Arc<dyn AdvanceHook>,
        metrics: Arc<FlushMetrics>,
        staleness: Arc<StalenessTracker>,
        trace: PipelineTrace,
    ) -> Self {
        Coordinator {
            progress,
            query_scn,
            quiesce,
            hook,
            advance_latency: Mutex::new(LatencyStats::new()),
            advances: Mutex::new(0),
            metrics,
            staleness,
            trace,
        }
    }

    /// The published QuerySCN cell.
    pub fn query_scn(&self) -> &Arc<QueryScnCell> {
        &self.query_scn
    }

    /// The quiesce lock.
    pub fn quiesce(&self) -> &Arc<QuiesceLock> {
        &self.quiesce
    }

    /// Attempt one QuerySCN advancement. Returns the newly published SCN,
    /// or `None` when no progress was possible.
    pub fn try_advance(&self) -> Option<Scn> {
        let target = self.progress.min();
        if target == Scn::ZERO {
            return None;
        }
        if let Some(current) = self.query_scn.get() {
            if target <= current {
                return None;
            }
        }
        let started = Instant::now();
        let (flush_us, publish_us);
        {
            // Quiesce period: population may not capture snapshots while
            // invalidations for `target` are in flight (paper §III.A).
            let _quiesce = self.quiesce.begin_quiesce();
            self.hook.flush_for_advance(target);
            flush_us = self.staleness.now_micros();
            self.query_scn.publish(target);
            publish_us = self.staleness.now_micros();
        }
        self.staleness.on_advance(target.0, flush_us, publish_us);
        let elapsed = started.elapsed();
        self.advance_latency.lock().record(elapsed);
        *self.advances.lock() += 1;
        self.metrics.advances.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.metrics.quiesce_us.record(elapsed);
        self.trace.record(
            TraceStage::Advance,
            target.0,
            format!("QuerySCN published after {}µs quiesce", elapsed.as_micros()),
        );
        Some(target)
    }

    /// Number of successful advancements.
    pub fn advance_count(&self) -> u64 {
        *self.advances.lock()
    }

    /// Summary of advancement latencies.
    pub fn advance_latency(&self) -> imadg_common::stats::LatencySummary {
        self.advance_latency.lock().summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::WorkerId;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn coord(progress: Arc<Progress>, hook: Arc<dyn AdvanceHook>) -> Coordinator {
        Coordinator::new(
            progress,
            Arc::new(QueryScnCell::new()),
            Arc::new(QuiesceLock::new()),
            hook,
        )
    }

    #[test]
    fn no_advance_without_progress() {
        let p = Arc::new(Progress::new(2));
        let c = coord(p.clone(), Arc::new(NoopAdvanceHook));
        assert_eq!(c.try_advance(), None);
        p.report(WorkerId(0), Scn(5));
        assert_eq!(c.try_advance(), None, "worker 1 still at zero");
    }

    #[test]
    fn advances_to_min_and_leapfrogs() {
        let p = Arc::new(Progress::new(2));
        let c = coord(p.clone(), Arc::new(NoopAdvanceHook));
        p.report(WorkerId(0), Scn(10));
        p.report(WorkerId(1), Scn(7));
        assert_eq!(c.try_advance(), Some(Scn(7)));
        assert_eq!(c.query_scn().get(), Some(Scn(7)));
        assert_eq!(c.try_advance(), None, "no new progress");
        p.report(WorkerId(1), Scn(42));
        assert_eq!(c.try_advance(), Some(Scn(10)), "leapfrog to new min");
        assert_eq!(c.advance_count(), 2);
    }

    struct RecordingHook(AtomicU64);
    impl AdvanceHook for RecordingHook {
        fn flush_for_advance(&self, target: Scn) {
            self.0.store(target.0, Ordering::SeqCst);
        }
    }

    #[test]
    fn hook_runs_before_publish_with_target() {
        let p = Arc::new(Progress::new(1));
        let hook = Arc::new(RecordingHook(AtomicU64::new(0)));
        let c = coord(p.clone(), hook.clone());
        p.report(WorkerId(0), Scn(9));
        c.try_advance();
        assert_eq!(hook.0.load(Ordering::SeqCst), 9);
        assert!(c.advance_latency().count == 1);
    }
}
