//! The redo dispatcher: hash-partitions the SCN-ordered merge output
//! across recovery worker queues (paper §II.A, Fig. 3).
//!
//! Routing rules:
//! * change vectors go to `hash(DBA) % workers` — each block has exactly
//!   one owner, so per-block apply order equals SCN order;
//! * transaction control records go to `hash(txn) % workers` (the "special
//!   block" of the transaction's undo segment header);
//! * DDL markers go to worker 0 — but CREATE TABLE is applied to the
//!   dictionary *inline at dispatch*, because the new table's change
//!   vectors hash to arbitrary workers and may be consumed before worker
//!   0 reaches the marker;
//! * after each dispatched batch, a watermark item carrying the batch's
//!   highest SCN is sent to *every* worker, so workers that received no
//!   work still advance their progress.

use std::sync::Arc;

use crossbeam::channel::Sender;
use imadg_common::{Result, Scn};
use imadg_redo::{RedoPayload, RedoRecord};
use imadg_storage::Store;

use crate::worker::WorkItem;

/// Fan-out stage from merged redo to worker queues.
pub struct Dispatcher {
    queues: Vec<Sender<WorkItem>>,
    store: Arc<Store>,
    highest_dispatched: Scn,
}

impl Dispatcher {
    /// Dispatcher over the workers' queue senders.
    pub fn new(queues: Vec<Sender<WorkItem>>, store: Arc<Store>) -> Self {
        assert!(!queues.is_empty());
        Dispatcher { queues, store, highest_dispatched: Scn::ZERO }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Highest SCN dispatched so far.
    pub fn highest(&self) -> Scn {
        self.highest_dispatched
    }

    /// Dispatch a batch of SCN-ordered records; returns items enqueued
    /// (excluding watermarks).
    pub fn dispatch(&mut self, records: Vec<RedoRecord>) -> Result<usize> {
        if records.is_empty() {
            return Ok(0);
        }
        let n = self.queues.len();
        let mut items = 0usize;
        for record in records {
            debug_assert!(record.scn >= self.highest_dispatched, "merge output is ordered");
            self.highest_dispatched = self.highest_dispatched.max(record.scn);
            let scn = record.scn;
            match record.payload {
                RedoPayload::Change(cvs) => {
                    for cv in cvs {
                        let w = cv.dba.worker_hash(n);
                        self.send(w, WorkItem::Change { scn, cv })?;
                        items += 1;
                    }
                }
                RedoPayload::Begin { txn, tenant } => {
                    self.send(txn.bucket(n), WorkItem::Begin { scn, txn, tenant })?;
                    items += 1;
                }
                RedoPayload::Commit(rec) => {
                    self.send(rec.txn.bucket(n), WorkItem::Commit { scn, record: rec })?;
                    items += 1;
                }
                RedoPayload::Abort { txn, tenant } => {
                    self.send(txn.bucket(n), WorkItem::Abort { scn, txn, tenant })?;
                    items += 1;
                }
                RedoPayload::Marker(m) => {
                    // Physical dictionary changes must exist before any of
                    // the table's CVs — which are already being enqueued to
                    // other workers in this same batch — get applied.
                    // Idempotent on replay after restart.
                    if let imadg_redo::DdlKind::CreateTable(spec) = &m.ddl {
                        let _ = self.store.create_table(spec.clone());
                    }
                    self.send(0, WorkItem::Marker { scn, marker: std::sync::Arc::new(m) })?;
                    items += 1;
                }
                RedoPayload::Heartbeat => {} // swallowed by the merger normally
            }
        }
        // Batch watermark: every worker may advance to the batch's end.
        let wm = self.highest_dispatched;
        for w in 0..n {
            self.send(w, WorkItem::Watermark(wm))?;
        }
        Ok(items)
    }

    fn send(&self, worker: usize, item: WorkItem) -> Result<()> {
        self.queues[worker].send(item).map_err(|_| imadg_common::Error::TransportClosed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::work_queue;
    use imadg_common::{Dba, ObjectId, RedoThreadId, TenantId, TxnId};
    use imadg_storage::{ChangeOp, ChangeVector};

    fn change_record(scn: u64, dbas: &[u64]) -> RedoRecord {
        RedoRecord {
            thread: RedoThreadId(1),
            scn: Scn(scn),
            born_us: 0,
            payload: RedoPayload::Change(
                dbas.iter()
                    .map(|&d| ChangeVector {
                        dba: Dba(d),
                        object: ObjectId(1),
                        tenant: TenantId::DEFAULT,
                        txn: TxnId(1),
                        op: ChangeOp::Format { capacity: 8 },
                    })
                    .collect(),
            ),
        }
    }

    #[test]
    fn same_dba_routes_to_same_worker() {
        let (t0, r0) = work_queue();
        let (t1, r1) = work_queue();
        let mut d = Dispatcher::new(vec![t0, t1], Arc::new(Store::new()));
        d.dispatch(vec![change_record(1, &[42]), change_record(2, &[42])]).unwrap();
        let q0: Vec<_> = r0.try_iter().collect();
        let q1: Vec<_> = r1.try_iter().collect();
        let changes_0 = q0.iter().filter(|i| matches!(i, WorkItem::Change { .. })).count();
        let changes_1 = q1.iter().filter(|i| matches!(i, WorkItem::Change { .. })).count();
        assert!(
            (changes_0 == 2 && changes_1 == 0) || (changes_0 == 0 && changes_1 == 2),
            "both CVs for DBA 42 must land on one worker"
        );
    }

    #[test]
    fn watermark_reaches_all_workers() {
        let (t0, r0) = work_queue();
        let (t1, r1) = work_queue();
        let mut d = Dispatcher::new(vec![t0, t1], Arc::new(Store::new()));
        d.dispatch(vec![change_record(7, &[1])]).unwrap();
        for r in [&r0, &r1] {
            let items: Vec<_> = r.try_iter().collect();
            assert!(items.iter().any(|i| matches!(i, WorkItem::Watermark(s) if *s == Scn(7))));
        }
        assert_eq!(d.highest(), Scn(7));
    }

    #[test]
    fn control_records_follow_txn_hash() {
        let (t0, r0) = work_queue();
        let (t1, r1) = work_queue();
        let mut d = Dispatcher::new(vec![t0, t1], Arc::new(Store::new()));
        let txn = TxnId(99);
        d.dispatch(vec![
            RedoRecord {
                thread: RedoThreadId(1),
                scn: Scn(1),
                born_us: 0,
                payload: RedoPayload::Begin { txn, tenant: TenantId::DEFAULT },
            },
            RedoRecord {
                thread: RedoThreadId(1),
                scn: Scn(2),
                born_us: 0,
                payload: RedoPayload::Abort { txn, tenant: TenantId::DEFAULT },
            },
        ])
        .unwrap();
        let count = |r: &crossbeam::channel::Receiver<WorkItem>| {
            r.try_iter()
                .filter(|i| matches!(i, WorkItem::Begin { .. } | WorkItem::Abort { .. }))
                .count()
        };
        let (c0, c1) = (count(&r0), count(&r1));
        assert!((c0 == 2 && c1 == 0) || (c0 == 0 && c1 == 2));
    }

    #[test]
    fn empty_batch_is_noop() {
        let (t0, r0) = work_queue();
        let mut d = Dispatcher::new(vec![t0], Arc::new(Store::new()));
        assert_eq!(d.dispatch(vec![]).unwrap(), 0);
        assert_eq!(r0.try_iter().count(), 0, "no watermark for empty batch");
    }
}
