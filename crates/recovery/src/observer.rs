//! Observation hooks on the redo apply path.
//!
//! The DBIM-on-ADG Mining Component "piggybacks on the recovery workers to
//! sniff each CV" (paper §III.B). Rather than hard-wiring the column-store
//! into media recovery, workers invoke an [`ApplyObserver`] for every
//! record they apply; the mining component (in `imadg-core`) implements it.

use imadg_common::{Scn, TenantId, TxnId, WorkerId};
use imadg_redo::{CommitRecord, RedoMarker};
use imadg_storage::ChangeVector;

/// Callbacks fired by recovery workers as they apply redo.
///
/// Implementations must be cheap and thread-safe: they run on the apply
/// critical path, and the design goal is "extremely thin layers of overhead
/// on the ADG architecture" (paper §I).
pub trait ApplyObserver: Send + Sync {
    /// A data change vector was applied by `worker` at `scn`.
    fn on_change(&self, worker: WorkerId, cv: &ChangeVector, scn: Scn) {
        let _ = (worker, cv, scn);
    }

    /// A transaction-begin control record was applied.
    fn on_begin(&self, worker: WorkerId, txn: TxnId, tenant: TenantId, scn: Scn) {
        let _ = (worker, txn, tenant, scn);
    }

    /// A commit record was applied.
    fn on_commit(&self, worker: WorkerId, record: &CommitRecord) {
        let _ = (worker, record);
    }

    /// An abort record was applied.
    fn on_abort(&self, worker: WorkerId, txn: TxnId, tenant: TenantId) {
        let _ = (worker, txn, tenant);
    }

    /// A DDL redo marker was applied at `scn`.
    fn on_marker(&self, worker: WorkerId, marker: &RedoMarker, scn: Scn) {
        let _ = (worker, marker, scn);
    }
}

/// Observer that ignores everything (recovery without DBIM-on-ADG — the
/// baseline configuration of the paper's experiments).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl ApplyObserver for NoopObserver {}

/// Cooperative-flush participation hook (paper §III.D.2): recovery workers
/// "periodically check if a worklink has been created" and help drain it.
pub trait CoopHelper: Send + Sync {
    /// Flush up to `budget` worklink nodes; returns how many were flushed.
    fn help_flush(&self, budget: usize) -> usize;
}

/// Helper that never has work (baseline / cooperative flush disabled).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHelper;

impl CoopHelper for NoopHelper {
    fn help_flush(&self, _budget: usize) -> usize {
        0
    }
}
