//! `imadg-recovery`: standby media recovery (parallel redo apply).
//!
//! Implements the paper's §II.A machinery: the SCN-ordered merge output is
//! hash-partitioned across recovery workers (Fig. 3); a coordinator tracks
//! worker progress and establishes consistency points published as the
//! QuerySCN, flushing column-store invalidations under the quiesce lock
//! before each publish (§III.A, §III.D).

pub mod coordinator;
pub mod dispatch;
pub mod observer;
pub mod pipeline;
pub mod progress;
pub mod worker;

pub use coordinator::{AdvanceHook, Coordinator, NoopAdvanceHook};
pub use dispatch::Dispatcher;
pub use observer::{ApplyObserver, CoopHelper, NoopHelper, NoopObserver};
pub use pipeline::{MediaRecovery, RecoveryStageIds, RecoveryThreads};
pub use progress::Progress;
pub use worker::{work_queue, WorkItem, Worker};
