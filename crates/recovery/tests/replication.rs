//! End-to-end replication: primary transaction manager → redo shipping →
//! standby media recovery. Verifies that the standby's storage converges to
//! the primary's and that QuerySCN semantics hold.

use std::sync::Arc;
use std::time::Duration;

use imadg_common::{
    ObjectId, QueryScnCell, QuiesceLock, RecoveryConfig, RedoThreadId, Scn, ScnService, TenantId,
};
use imadg_recovery::{MediaRecovery, NoopAdvanceHook};
use imadg_redo::{redo_link, LogBuffer, Shipper};
use imadg_storage::{ColumnType, DbaAllocator, Schema, Store, TableSpec, Value};
use imadg_txn::{InMemoryRegistry, LockTable, TxnIdService, TxnManager};

const OBJ: ObjectId = ObjectId(1);

struct Harness {
    txm: TxnManager,
    scns: Arc<ScnService>,
    log: Arc<LogBuffer>,
    shipper: Shipper,
    sender: imadg_redo::RedoSender,
    standby_store: Arc<Store>,
    recovery: Arc<MediaRecovery>,
}

fn spec() -> TableSpec {
    TableSpec {
        id: OBJ,
        name: "t".into(),
        tenant: TenantId::DEFAULT,
        schema: Schema::of(&[
            ("id", ColumnType::Int),
            ("n1", ColumnType::Int),
            ("c1", ColumnType::Varchar),
        ]),
        key_ordinal: 0,
        rows_per_block: 8,
    }
}

fn harness(workers: usize) -> Harness {
    let primary_store = Arc::new(Store::new());
    primary_store.create_table(spec()).unwrap();
    let standby_store = Arc::new(Store::new());
    standby_store.create_table(spec()).unwrap();

    let scns = Arc::new(ScnService::new());
    let log = Arc::new(LogBuffer::new(RedoThreadId(1)));
    let txm = TxnManager::new(
        primary_store,
        scns.clone(),
        log.clone(),
        Arc::new(TxnIdService::new()),
        Arc::new(LockTable::new()),
        Arc::new(InMemoryRegistry::new()),
        Arc::new(DbaAllocator::default()),
    );

    let (sender, receiver) = redo_link(Duration::ZERO);
    let recovery = MediaRecovery::new(
        &RecoveryConfig { workers, ..Default::default() },
        standby_store.clone(),
        vec![Box::new(receiver) as Box<dyn imadg_redo::RedoSource>],
        vec![],
        None,
        Arc::new(NoopAdvanceHook),
        Arc::new(QueryScnCell::new()),
        Arc::new(QuiesceLock::new()),
    )
    .unwrap();

    Harness { txm, scns, log, shipper: Shipper::new(64), sender, standby_store, recovery }
}

impl Harness {
    fn sync(&self) {
        self.shipper.ship_all(&self.log, &self.sender, self.scns.current()).unwrap();
        self.recovery.pump_until_idle().unwrap();
    }

    fn query_scn(&self) -> Scn {
        self.recovery.coordinator().query_scn().get().expect("published")
    }
}

fn row(k: i64, n: i64, c: &str) -> Vec<Value> {
    vec![Value::Int(k), Value::Int(n), Value::str(c)]
}

#[test]
fn standby_converges_after_commits() {
    let h = harness(4);
    let mut tx = h.txm.begin(TenantId::DEFAULT);
    for k in 0..50 {
        h.txm.insert(&mut tx, OBJ, row(k, k * 10, "v")).unwrap();
    }
    let cscn = h.txm.commit(tx);
    h.sync();

    assert!(h.query_scn() >= cscn, "QuerySCN reaches the commit");
    let mut n = 0;
    h.standby_store.scan_object(OBJ, h.query_scn(), None, |_, _| n += 1).unwrap();
    assert_eq!(n, 50);
    let got = h.standby_store.fetch_by_key(OBJ, 7, h.query_scn(), None).unwrap().unwrap().1;
    assert_eq!(got[1], Value::Int(70));
}

#[test]
fn uncommitted_changes_invisible_on_standby() {
    let h = harness(4);
    let mut tx = h.txm.begin(TenantId::DEFAULT);
    h.txm.insert(&mut tx, OBJ, row(1, 1, "a")).unwrap();
    // Ship the DML without the commit.
    h.sync();
    let q = h.query_scn();
    assert!(
        h.standby_store.fetch_by_key(OBJ, 1, q, None).unwrap().is_none(),
        "in-flight transaction invisible at the QuerySCN"
    );
    let cscn = h.txm.commit(tx);
    h.sync();
    assert!(h.query_scn() >= cscn);
    assert!(h.standby_store.fetch_by_key(OBJ, 1, h.query_scn(), None).unwrap().is_some());
}

#[test]
fn aborted_transactions_never_visible() {
    let h = harness(2);
    let mut tx = h.txm.begin(TenantId::DEFAULT);
    h.txm.insert(&mut tx, OBJ, row(1, 1, "a")).unwrap();
    h.txm.abort(tx);
    h.sync();
    assert!(h.standby_store.fetch_by_key(OBJ, 1, h.query_scn(), None).unwrap().is_none());
}

#[test]
fn updates_replicate_with_correct_versions() {
    let h = harness(4);
    let mut tx = h.txm.begin(TenantId::DEFAULT);
    h.txm.insert(&mut tx, OBJ, row(1, 10, "a")).unwrap();
    let scn_v1 = h.txm.commit(tx);
    let mut tx = h.txm.begin(TenantId::DEFAULT);
    h.txm.update_column_by_key(&mut tx, OBJ, 1, "n1", Value::Int(20)).unwrap();
    let scn_v2 = h.txm.commit(tx);
    h.sync();
    // Standby sees the latest at its QuerySCN…
    let q = h.query_scn();
    assert!(q >= scn_v2);
    let latest = h.standby_store.fetch_by_key(OBJ, 1, q, None).unwrap().unwrap().1;
    assert_eq!(latest[1], Value::Int(20));
    // …and the older version through CR at an older snapshot.
    let old = h.standby_store.fetch_by_key(OBJ, 1, scn_v1, None).unwrap().unwrap().1;
    assert_eq!(old[1], Value::Int(10));
}

#[test]
fn query_scn_only_moves_forward_and_leapfrogs() {
    let h = harness(8);
    let mut last = Scn::ZERO;
    for round in 0..10 {
        let mut tx = h.txm.begin(TenantId::DEFAULT);
        for k in 0..5 {
            h.txm.insert(&mut tx, OBJ, row(round * 5 + k, k, "x")).unwrap();
        }
        h.txm.commit(tx);
        h.sync();
        let q = h.query_scn();
        assert!(q > last, "QuerySCN strictly advanced after new redo");
        last = q;
    }
}

#[test]
fn threaded_recovery_converges() {
    let h = harness(4);
    let threads = h.recovery.start();
    let mut expected = Vec::new();
    for round in 0..20i64 {
        let mut tx = h.txm.begin(TenantId::DEFAULT);
        h.txm.insert(&mut tx, OBJ, row(round, round * 2, "t")).unwrap();
        let cscn = h.txm.commit(tx);
        expected.push((round, round * 2));
        h.shipper.ship_all(&h.log, &h.sender, h.scns.current()).unwrap();
        if round == 19 {
            // Wait for the standby to reach the final commit.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            loop {
                if h.recovery.coordinator().query_scn().get().is_some_and(|q| q >= cscn) {
                    break;
                }
                assert!(std::time::Instant::now() < deadline, "standby failed to catch up");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    threads.shutdown();
    let q = h.query_scn();
    for (k, n) in expected {
        let got = h.standby_store.fetch_by_key(OBJ, k, q, None).unwrap().unwrap().1;
        assert_eq!(got[1], Value::Int(n));
    }
}
