//! On-disk redo persistence: segmented write-ahead files with group
//! commit, a sealed-segment archive tier, and the standby checkpoint.
//!
//! Both link endpoints tee through a [`DurableLog`]: the primary persists
//! every shipped batch (so NAK gap-resolution can be served from archived
//! logs after the in-memory retained window evicts), and the standby
//! persists every in-order delivered batch (so a crashed standby restarts
//! from disk and re-joins the link at its durable position).
//!
//! ## Segment format
//!
//! A segment file is `[magic u32][version u32]` followed by entries of
//! `[len u32][crc32 u32][payload]`, where the CRC covers the payload:
//! `[seq u64][count u32][record…]` in the [`crate::codec`] encoding —
//! bit-identical to the records that travelled the link. Segments are
//! named by their first sequence number; when the active segment exceeds
//! `segment_max_bytes` it is sealed and becomes eligible for archival
//! (a rename from `wal/` to `archive/`).
//!
//! ## Group commit
//!
//! [`DurableLog::append_batch`] only buffers; [`DurableLog::sync_if_pending`]
//! writes and fsyncs everything buffered since the last call. The callers
//! are stage `run_once` quanta, so one fsync covers every batch of the
//! quantum — fsync batching behind the existing Stage runtime, no extra
//! threads or timers.
//!
//! ## Torn tails
//!
//! A crash can leave a half-written entry at the end of the newest
//! segment. [`DurableLog::open`] detects it via the length/CRC envelope
//! and truncates the file back to the last complete entry; everything
//! before it is trusted (CRC-verified on read).

use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use imadg_common::metrics::DurabilityMetrics;
use imadg_common::{Error, Result, Scn};
use parking_lot::Mutex;

use crate::codec;
use crate::record::RedoRecord;
use crate::transport::RedoSource;

/// Segment file magic: `IMRL` ("in-memory redo log").
const SEGMENT_MAGIC: u32 = 0x4C52_4D49;
/// Segment format version; readers reject versions they do not know.
const SEGMENT_VERSION: u32 = 1;
/// Segment header size: `[magic u32][version u32]`.
const SEGMENT_HEADER: u64 = 8;
/// Entry header size: `[len u32][crc32 u32]`.
const ENTRY_HEADER: usize = 8;

fn io_err(ctx: &str, e: std::io::Error) -> Error {
    Error::Io(format!("{ctx}: {e}"))
}

/// One `(seq, records)` batch read back from disk.
pub type DiskBatch = (u64, Vec<RedoRecord>);

fn segment_name(first_seq: u64) -> String {
    format!("seg-{first_seq:020}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?.strip_suffix(".log")?.parse().ok()
}

/// Sorted `(first_seq, path)` list of the segment files in `dir`.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err("list segments", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list segments", e))?;
        let name = entry.file_name();
        if let Some(first) = name.to_str().and_then(parse_segment_name) {
            out.push((first, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Decode every complete entry in one segment file. Returns the batches
/// and the byte offset just past the last complete entry. A torn tail
/// (truncated or checksum-failing final bytes) stops the scan; corruption
/// *before* the tail is only distinguishable by `strict` callers that know
/// the file is sealed.
fn read_segment(path: &Path) -> Result<(Vec<DiskBatch>, u64)> {
    let bytes = fs::read(path).map_err(|e| io_err("read segment", e))?;
    if bytes.len() < SEGMENT_HEADER as usize {
        return Ok((Vec::new(), SEGMENT_HEADER.min(bytes.len() as u64)));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if magic != SEGMENT_MAGIC {
        return Err(Error::Io(format!("{}: bad segment magic {magic:#x}", path.display())));
    }
    if version != SEGMENT_VERSION {
        return Err(Error::Io(format!("{}: unknown segment version {version}", path.display())));
    }
    let mut batches = Vec::new();
    let mut pos = SEGMENT_HEADER as usize;
    loop {
        if pos + ENTRY_HEADER > bytes.len() {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + ENTRY_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            break; // torn tail: length runs past the file
        };
        let payload = &bytes[start..end];
        if codec::crc32(payload) != crc {
            break; // torn tail: entry half-written when the crash hit
        }
        let mut c = codec::Cur::new(payload);
        let seq = c.u64()?;
        let count = c.u32()? as usize;
        let mut records = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            records.push(codec::get_record(&mut c)?);
        }
        c.done()?;
        batches.push((seq, records));
        pos = end;
    }
    Ok((batches, pos as u64))
}

struct ActiveSegment {
    file: File,
    path: PathBuf,
    bytes: u64,
}

struct LogInner {
    wal_dir: PathBuf,
    archive_dir: PathBuf,
    segment_max_bytes: u64,
    active: Option<ActiveSegment>,
    /// Encoded entries appended since the last sync (lost on crash).
    buf: Vec<u8>,
    /// First sequence number buffered in `buf`.
    buf_first_seq: u64,
    buf_records: u64,
    /// Highest sequence appended (including unsynced).
    appended_seq: u64,
    /// Highest sequence fsynced to disk.
    durable_seq: u64,
    /// Sealed wal segments awaiting the archiver.
    sealed: Vec<PathBuf>,
}

/// A segmented, group-committed on-disk redo log for one redo thread.
pub struct DurableLog {
    inner: Mutex<LogInner>,
    metrics: Mutex<Arc<DurabilityMetrics>>,
}

impl DurableLog {
    /// Open (or create) the log under `dir`, recovering the durable
    /// position from existing segments and truncating any torn tail.
    pub fn open(dir: impl AsRef<Path>, segment_max_bytes: u64) -> Result<DurableLog> {
        let dir = dir.as_ref();
        let wal_dir = dir.join("wal");
        let archive_dir = dir.join("archive");
        fs::create_dir_all(&wal_dir).map_err(|e| io_err("create wal dir", e))?;
        fs::create_dir_all(&archive_dir).map_err(|e| io_err("create archive dir", e))?;

        let mut durable_seq = 0u64;
        for (_, path) in list_segments(&archive_dir)? {
            let (batches, _) = read_segment(&path)?;
            if let Some(&(seq, _)) = batches.last() {
                durable_seq = durable_seq.max(seq);
            }
        }
        // Every existing wal segment is sealed from this process's point of
        // view (a restart performs a log switch); the newest may carry a
        // torn tail from the crash — truncate it back to the last complete
        // entry so later reads see only whole, checksummed batches.
        let wal = list_segments(&wal_dir)?;
        let mut sealed = Vec::new();
        for (i, (_, path)) in wal.iter().enumerate() {
            let (batches, good_len) = read_segment(path)?;
            if let Some(&(seq, _)) = batches.last() {
                durable_seq = durable_seq.max(seq);
            }
            if batches.is_empty() {
                // No complete entry survived (e.g. the crash tore the
                // segment's only entry): the file holds no data, and its
                // first-seq name would collide with the segment the
                // re-shipped batch opens after restart — remove it.
                fs::remove_file(path).map_err(|e| io_err("remove empty segment", e))?;
                continue;
            }
            if i == wal.len() - 1 {
                let actual = fs::metadata(path).map_err(|e| io_err("stat segment", e))?.len();
                if actual > good_len {
                    let f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| io_err("open for truncate", e))?;
                    f.set_len(good_len).map_err(|e| io_err("truncate torn tail", e))?;
                    f.sync_data().map_err(|e| io_err("sync truncated segment", e))?;
                }
            }
            sealed.push(path.clone());
        }
        Ok(DurableLog {
            inner: Mutex::new(LogInner {
                wal_dir,
                archive_dir,
                segment_max_bytes: segment_max_bytes.max(SEGMENT_HEADER + 64),
                active: None,
                buf: Vec::new(),
                buf_first_seq: 0,
                buf_records: 0,
                appended_seq: durable_seq,
                durable_seq,
                sealed,
            }),
            metrics: Mutex::new(Arc::default()),
        })
    }

    /// Report into a registry's durability stage.
    pub fn set_metrics(&self, metrics: Arc<DurabilityMetrics>) {
        *self.metrics.lock() = metrics;
    }

    fn metrics(&self) -> Arc<DurabilityMetrics> {
        self.metrics.lock().clone()
    }

    /// Buffer one `(seq, records)` batch for the next group commit.
    pub fn append_batch(&self, seq: u64, records: &[RedoRecord]) -> Result<()> {
        let mut inner = self.inner.lock();
        if seq <= inner.appended_seq {
            // A retransmit of something already persisted (the sender tees
            // NAK-served frames through the same path).
            return Ok(());
        }
        let mut payload = Vec::with_capacity(64);
        codec::put_u64(&mut payload, seq);
        codec::put_u32(&mut payload, records.len() as u32);
        for r in records {
            codec::put_record(&mut payload, r);
        }
        if inner.buf.is_empty() {
            inner.buf_first_seq = seq;
        }
        let crc = codec::crc32(&payload);
        let len = payload.len() as u32;
        inner.buf.extend_from_slice(&len.to_le_bytes());
        inner.buf.extend_from_slice(&crc.to_le_bytes());
        inner.buf.extend_from_slice(&payload);
        inner.buf_records += records.len() as u64;
        inner.appended_seq = seq;
        let m = self.metrics();
        m.appends.inc();
        Ok(())
    }

    /// Group commit: write and fsync everything buffered since the last
    /// call. One call per stage quantum batches every append of the
    /// quantum behind a single fsync. Returns whether anything was synced.
    pub fn sync_if_pending(&self) -> Result<bool> {
        let mut inner = self.inner.lock();
        if inner.buf.is_empty() {
            return Ok(false);
        }
        if inner.active.is_none() {
            let path = inner.wal_dir.join(segment_name(inner.buf_first_seq));
            let mut file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err("open segment", e))?;
            let mut header = Vec::with_capacity(SEGMENT_HEADER as usize);
            codec::put_u32(&mut header, SEGMENT_MAGIC);
            codec::put_u32(&mut header, SEGMENT_VERSION);
            file.write_all(&header).map_err(|e| io_err("write segment header", e))?;
            inner.active = Some(ActiveSegment { file, path, bytes: SEGMENT_HEADER });
        }
        let buf = std::mem::take(&mut inner.buf);
        let records = std::mem::take(&mut inner.buf_records);
        let seq = inner.appended_seq;
        {
            let active = inner.active.as_mut().expect("active segment open");
            active.file.write_all(&buf).map_err(|e| io_err("write segment", e))?;
            active.file.sync_data().map_err(|e| io_err("fsync segment", e))?;
            active.bytes += buf.len() as u64;
        }
        inner.durable_seq = seq;
        let m = self.metrics();
        m.fsyncs.inc();
        m.bytes_persisted.add(buf.len() as u64);
        m.records_persisted.add(records);
        m.durable_seq.set(seq);
        if inner.active.as_ref().is_some_and(|a| a.bytes >= inner.segment_max_bytes) {
            let active = inner.active.take().expect("active segment open");
            inner.sealed.push(active.path);
            m.segments_sealed.inc();
        }
        m.wal_segments.set(list_segments(&inner.wal_dir)?.len() as u64);
        Ok(true)
    }

    /// Move sealed segments from the wal tier to the archive tier (the
    /// background archiver's quantum). Returns segments moved.
    pub fn archive_sealed(&self) -> Result<usize> {
        let mut inner = self.inner.lock();
        let sealed = std::mem::take(&mut inner.sealed);
        let n = sealed.len();
        for path in sealed {
            let name = path.file_name().expect("segment has a name").to_owned();
            let dst = inner.archive_dir.join(name);
            fs::rename(&path, &dst).map_err(|e| io_err("archive segment", e))?;
        }
        if n > 0 {
            let m = self.metrics();
            m.segments_archived.add(n as u64);
            m.wal_segments.set(list_segments(&inner.wal_dir)?.len() as u64);
            m.archived_segments.set(list_segments(&inner.archive_dir)?.len() as u64);
        }
        Ok(n)
    }

    /// Whether sealed segments are waiting for [`DurableLog::archive_sealed`].
    pub fn archive_pending(&self) -> bool {
        !self.inner.lock().sealed.is_empty()
    }

    /// Highest sequence number fsynced to disk.
    pub fn durable_seq(&self) -> u64 {
        self.inner.lock().durable_seq
    }

    /// Highest sequence number appended (including unsynced buffer).
    pub fn appended_seq(&self) -> u64 {
        self.inner.lock().appended_seq
    }

    /// Simulate losing the group-commit buffer in a crash: everything
    /// appended but not yet synced is discarded.
    pub fn drop_unsynced(&self) {
        let mut inner = self.inner.lock();
        inner.buf.clear();
        inner.buf_records = 0;
        inner.appended_seq = inner.durable_seq;
    }

    /// Read every durable batch with sequence `>= from`, in sequence
    /// order, spanning the archive tier and the wal tier.
    pub fn read_from(&self, from: u64) -> Result<Vec<DiskBatch>> {
        let inner = self.inner.lock();
        let mut segments = list_segments(&inner.archive_dir)?;
        segments.extend(list_segments(&inner.wal_dir)?);
        segments.sort();
        let mut out = Vec::new();
        for (_, path) in segments {
            let (batches, _) = read_segment(&path)?;
            out.extend(batches.into_iter().filter(|&(seq, _)| seq >= from));
        }
        out.sort_by_key(|&(seq, _)| seq);
        Ok(out)
    }

    /// Read the durable batches in `from..=to` (NAK gap-resolution beyond
    /// the in-memory retained window).
    pub fn read_range(&self, from: u64, to: u64) -> Result<Vec<DiskBatch>> {
        let mut batches = self.read_from(from)?;
        batches.retain(|&(seq, _)| seq <= to);
        Ok(batches)
    }
}

// ---- checkpoint ----------------------------------------------------------

/// The standby checkpoint document: the applied-SCN watermark below which
/// restart mining is skipped. Written atomically (tmp + rename).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Checkpoint {
    /// The applied/published SCN watermark at checkpoint time.
    pub scn: u64,
}

/// Write `scn` as the checkpoint at `path`, atomically.
pub fn write_checkpoint(path: impl AsRef<Path>, scn: Scn) -> Result<()> {
    let path = path.as_ref();
    let doc = serde_json::to_string(&Checkpoint { scn: scn.0 })
        .map_err(|e| Error::Io(format!("encode checkpoint: {e}")))?;
    let tmp = path.with_extension("tmp");
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| io_err("create checkpoint dir", e))?;
    }
    let mut f = File::create(&tmp).map_err(|e| io_err("create checkpoint", e))?;
    f.write_all(doc.as_bytes()).map_err(|e| io_err("write checkpoint", e))?;
    f.sync_data().map_err(|e| io_err("sync checkpoint", e))?;
    fs::rename(&tmp, path).map_err(|e| io_err("rename checkpoint", e))?;
    Ok(())
}

/// Read the checkpoint at `path`; `None` when no checkpoint was taken yet.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<Option<Scn>> {
    let bytes = match fs::read(path.as_ref()) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read checkpoint", e)),
    };
    let text = String::from_utf8(bytes).map_err(|_| Error::Io("checkpoint is not utf-8".into()))?;
    let doc: Checkpoint =
        serde_json::from_str(&text).map_err(|e| Error::Io(format!("decode checkpoint: {e}")))?;
    Ok(Some(Scn(doc.scn)))
}

// ---- restart replay ------------------------------------------------------

/// Batches replayed per `drain_ready` call, so the recovery pipeline
/// breathes (merge / dispatch / apply) between replay quanta instead of
/// swallowing the whole log as one batch.
const REPLAY_BATCHES_PER_DRAIN: usize = 64;

/// A [`RedoSource`] that first replays durable on-disk batches in sequence
/// order, then hands over to the live link — the hard-restart ingest path:
/// local redo files cover everything synced before the crash, and the
/// reset link (NAK gap resolution from the primary's archive) covers the
/// unsynced tail.
pub struct ReplaySource {
    batches: VecDeque<DiskBatch>,
    live: Box<dyn RedoSource>,
    metrics: Arc<DurabilityMetrics>,
}

impl ReplaySource {
    /// Wrap `live`, replaying `batches` first.
    pub fn new(batches: Vec<DiskBatch>, live: Box<dyn RedoSource>) -> ReplaySource {
        ReplaySource { batches: batches.into(), live, metrics: Arc::default() }
    }

    /// Batches still waiting to replay.
    pub fn replay_remaining(&self) -> usize {
        self.batches.len()
    }
}

impl RedoSource for ReplaySource {
    fn drain_ready(&mut self) -> Result<Vec<RedoRecord>> {
        if self.batches.is_empty() {
            return self.live.drain_ready();
        }
        let mut out = Vec::new();
        for _ in 0..REPLAY_BATCHES_PER_DRAIN {
            let Some((_, records)) = self.batches.pop_front() else { break };
            self.metrics.replayed_batches.inc();
            self.metrics.replayed_records.add(records.len() as u64);
            out.extend(records);
        }
        Ok(out)
    }

    fn transport_pending(&self) -> bool {
        !self.batches.is_empty() || self.live.transport_pending()
    }

    fn take_protocol_activity(&mut self) -> bool {
        self.live.take_protocol_activity()
    }

    fn time_to_next(&self) -> Option<Duration> {
        if self.batches.is_empty() {
            self.live.time_to_next()
        } else {
            Some(Duration::ZERO)
        }
    }

    fn bind_metrics(&mut self, metrics: Arc<imadg_common::metrics::TransportMetrics>) {
        self.live.bind_metrics(metrics);
    }

    fn bind_durability_metrics(&mut self, metrics: Arc<DurabilityMetrics>) {
        self.metrics = metrics.clone();
        self.live.bind_durability_metrics(metrics);
    }

    fn durable_sync(&mut self) -> Result<bool> {
        self.live.durable_sync()
    }

    fn durable_log(&self) -> Option<Arc<DurableLog>> {
        self.live.durable_log()
    }

    fn reset_for_restart(&mut self) -> Result<()> {
        // The restart builds its own full-disk replay over this source; any
        // replay still pending in this now-stale wrapper must not deliver a
        // second time (the merger would see SCNs run backwards).
        self.batches.clear();
        self.live.reset_for_restart()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RedoPayload;
    use imadg_common::RedoThreadId;

    fn rec(scn: u64) -> RedoRecord {
        RedoRecord {
            thread: RedoThreadId(1),
            scn: Scn(scn),
            born_us: 0,
            payload: RedoPayload::Heartbeat,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("imadg-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_sync_read_round_trips() {
        let dir = tmpdir("roundtrip");
        let log = DurableLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(log.durable_seq(), 0);
        log.append_batch(1, &[rec(10), rec(11)]).unwrap();
        log.append_batch(2, &[rec(12)]).unwrap();
        assert_eq!(log.durable_seq(), 0, "append only buffers");
        assert!(log.sync_if_pending().unwrap());
        assert!(!log.sync_if_pending().unwrap(), "nothing pending after sync");
        assert_eq!(log.durable_seq(), 2);
        let got = log.read_from(1).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[0].1.len(), 2);
        assert_eq!(got[1].1[0].scn, Scn(12));
        assert_eq!(log.read_from(2).unwrap().len(), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn duplicate_appends_are_ignored() {
        let dir = tmpdir("dup");
        let log = DurableLog::open(&dir, 1 << 20).unwrap();
        log.append_batch(1, &[rec(1)]).unwrap();
        log.append_batch(1, &[rec(1)]).unwrap();
        log.sync_if_pending().unwrap();
        log.append_batch(1, &[rec(1)]).unwrap();
        assert!(!log.sync_if_pending().unwrap(), "retransmit of durable seq dropped");
        assert_eq!(log.read_from(1).unwrap().len(), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn reopen_recovers_durable_position() {
        let dir = tmpdir("reopen");
        {
            let log = DurableLog::open(&dir, 1 << 20).unwrap();
            for seq in 1..=5 {
                log.append_batch(seq, &[rec(seq * 10)]).unwrap();
            }
            log.sync_if_pending().unwrap();
            // Unsynced tail: lost in the crash.
            log.append_batch(6, &[rec(60)]).unwrap();
        }
        let log = DurableLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(log.durable_seq(), 5);
        assert_eq!(log.read_from(1).unwrap().len(), 5);
        // New appends after the log switch land in a fresh segment.
        log.append_batch(6, &[rec(60)]).unwrap();
        log.sync_if_pending().unwrap();
        assert_eq!(log.read_from(1).unwrap().len(), 6);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        {
            let log = DurableLog::open(&dir, 1 << 20).unwrap();
            for seq in 1..=3 {
                log.append_batch(seq, &[rec(seq)]).unwrap();
            }
            log.sync_if_pending().unwrap();
        }
        // Corrupt the tail: append garbage bytes half-resembling an entry.
        let seg = list_segments(&dir.join("wal")).unwrap().pop().unwrap().1;
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0x55u8; 11]).unwrap();
        drop(f);
        let log = DurableLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(log.durable_seq(), 3, "complete entries survive the torn tail");
        assert_eq!(log.read_from(1).unwrap().len(), 3);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn segments_seal_and_archive() {
        let dir = tmpdir("seal");
        // Tiny segments: every sync seals one.
        let log = DurableLog::open(&dir, SEGMENT_HEADER + 64).unwrap();
        for seq in 1..=4 {
            log.append_batch(seq, &[rec(seq), rec(seq + 100)]).unwrap();
            log.sync_if_pending().unwrap();
        }
        assert!(log.archive_pending());
        let moved = log.archive_sealed().unwrap();
        assert!(moved >= 2, "tiny segments sealed as the bound is crossed (moved {moved})");
        assert!(!log.archive_pending());
        assert!(!list_segments(&dir.join("archive")).unwrap().is_empty());
        // Reads span both tiers, in order.
        let got = log.read_from(1).unwrap();
        assert_eq!(got.iter().map(|b| b.0).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(log.read_range(2, 3).unwrap().len(), 2);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn drop_unsynced_models_crash_loss() {
        let dir = tmpdir("crashloss");
        let log = DurableLog::open(&dir, 1 << 20).unwrap();
        log.append_batch(1, &[rec(1)]).unwrap();
        log.sync_if_pending().unwrap();
        log.append_batch(2, &[rec(2)]).unwrap();
        assert_eq!(log.appended_seq(), 2);
        log.drop_unsynced();
        assert_eq!(log.appended_seq(), 1);
        assert!(!log.sync_if_pending().unwrap());
        // The dropped batch can be re-appended (it will arrive again via
        // NAK once the link resumes at durable_seq + 1).
        log.append_batch(2, &[rec(2)]).unwrap();
        log.sync_if_pending().unwrap();
        assert_eq!(log.durable_seq(), 2);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn checkpoint_round_trips_and_is_atomic() {
        let dir = tmpdir("ckpt");
        let path = dir.join("checkpoint.json");
        assert_eq!(read_checkpoint(&path).unwrap(), None);
        write_checkpoint(&path, Scn(42)).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), Some(Scn(42)));
        write_checkpoint(&path, Scn(99)).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), Some(Scn(99)));
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn replay_source_drains_disk_then_delegates() {
        let dir = tmpdir("replay");
        let log = DurableLog::open(&dir, 1 << 20).unwrap();
        for seq in 1..=3 {
            log.append_batch(seq, &[rec(seq)]).unwrap();
        }
        log.sync_if_pending().unwrap();
        let (live_tx, live_rx) = crate::transport::redo_link(Duration::ZERO);
        live_tx.send(vec![rec(100)]).unwrap();
        let mut src = ReplaySource::new(log.read_from(1).unwrap(), Box::new(live_rx));
        assert!(src.transport_pending());
        let replayed = src.drain_ready().unwrap();
        assert_eq!(replayed.iter().map(|r| r.scn.0).collect::<Vec<_>>(), vec![1, 2, 3]);
        let live = src.drain_ready().unwrap();
        assert_eq!(live[0].scn, Scn(100));
        let _ = fs::remove_dir_all(dir);
    }
}

#[cfg(test)]
mod review_repro {
    use super::*;
    use crate::record::RedoPayload;
    use imadg_common::RedoThreadId;

    fn rec(scn: u64) -> RedoRecord {
        RedoRecord {
            thread: RedoThreadId(1),
            scn: Scn(scn),
            born_us: 0,
            payload: RedoPayload::Heartbeat,
        }
    }

    /// A big-enough batch that one synced entry exceeds the clamped
    /// minimum segment size (`SEGMENT_HEADER + 64`), sealing per sync.
    fn batch(scn: u64) -> Vec<RedoRecord> {
        (0..4).map(|k| rec(scn + k)).collect()
    }

    #[test]
    fn reopen_after_header_only_torn_segment_collides() {
        let dir = std::env::temp_dir().join(format!("imadg-collide-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        {
            // Tiny segments: every sync seals the active segment.
            let log = DurableLog::open(&dir, SEGMENT_HEADER + 1).unwrap();
            log.append_batch(1, &batch(1)).unwrap();
            log.sync_if_pending().unwrap(); // seg-1 sealed
            log.append_batch(2, &batch(10)).unwrap();
            log.sync_if_pending().unwrap(); // seg-2 sealed
        }
        // Crash tore seg-2's only entry: open() will truncate it to header-only.
        let seg2 = list_segments(&dir.join("wal")).unwrap().pop().unwrap().1;
        let f = OpenOptions::new().write(true).open(&seg2).unwrap();
        f.set_len(SEGMENT_HEADER + 3).unwrap(); // partial entry header
        drop(f);
        {
            let log = DurableLog::open(&dir, 1 << 20).unwrap();
            assert_eq!(log.durable_seq(), 1);
            // Re-append the lost batch (arrives again via NAK), same seq 2:
            // the new active segment is also named seg-2 — open() must
            // have removed the entry-less torn file so this is fresh.
            log.append_batch(2, &batch(10)).unwrap();
            log.sync_if_pending().unwrap();
            assert_eq!(log.read_from(1).unwrap().len(), 2, "both batches readable pre-reopen");
        }
        let log = DurableLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(log.durable_seq(), 2, "seq 2 must survive the second reopen");
        assert_eq!(log.read_from(1).unwrap().len(), 2, "seq 2 must be readable after reopen");
        let _ = fs::remove_dir_all(dir);
    }
}
