//! DDL redo markers.
//!
//! DBIM-on-ADG introduces *redo markers* — records "similar to redo records
//! but used to indicate changes to non-persistent objects" (paper §III.G).
//! The standby's mining component buffers marker information in the DDL
//! Information Table and drops affected IMCUs when the QuerySCN advances
//! past the DDL.

use imadg_common::{ObjectId, TenantId};
use imadg_storage::{ColumnType, TableSpec};

/// The DDL operation a marker describes.
#[derive(Debug, Clone)]
pub enum DdlKind {
    /// CREATE TABLE: the standby registers the object in its dictionary.
    CreateTable(TableSpec),
    /// Dictionary-only ADD COLUMN.
    AddColumn {
        /// New column name.
        name: String,
        /// New column type.
        ctype: ColumnType,
    },
    /// Dictionary-only DROP COLUMN.
    DropColumn {
        /// Dropped column name.
        name: String,
    },
    /// `ALTER TABLE ... [NO] INMEMORY` issued on the primary: propagated so
    /// the standby can drop IMCUs when the object leaves the in-memory set.
    SetInMemory {
        /// New enablement state.
        enabled: bool,
    },
}

impl DdlKind {
    /// Does this DDL change the object's definition in a way that
    /// invalidates existing IMCUs (schema shape change)?
    pub fn changes_definition(&self) -> bool {
        matches!(
            self,
            DdlKind::AddColumn { .. }
                | DdlKind::DropColumn { .. }
                | DdlKind::SetInMemory { enabled: false }
        )
    }
}

/// A redo marker: DDL metadata travelling inside the redo stream.
#[derive(Debug, Clone)]
pub struct RedoMarker {
    /// Object the DDL targets.
    pub object: ObjectId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// The operation.
    pub ddl: DdlKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definition_change_classification() {
        assert!(DdlKind::DropColumn { name: "c".into() }.changes_definition());
        assert!(
            DdlKind::AddColumn { name: "c".into(), ctype: ColumnType::Int }.changes_definition()
        );
        assert!(DdlKind::SetInMemory { enabled: false }.changes_definition());
        assert!(!DdlKind::SetInMemory { enabled: true }.changes_definition());
    }
}
