//! The standby Log Merger.
//!
//! "On the Standby instance, a Log Merger process orders the redo records
//! based on their SCN" (paper §II.A). With a RAC primary, several redo
//! threads generate interleaved streams; the merger buffers each stream and
//! releases records in global SCN order, bounded by the *watermark* — the
//! minimum SCN every stream is known to have reached. Idle streams advance
//! the watermark through heartbeat records.

use std::collections::VecDeque;

use imadg_common::Scn;

use crate::record::{RedoPayload, RedoRecord};

#[derive(Debug, Default)]
struct StreamState {
    buffer: VecDeque<RedoRecord>,
    /// Highest SCN seen from this stream (heartbeats included).
    last_seen: Scn,
}

/// SCN-merging buffer over N redo streams.
#[derive(Debug)]
pub struct LogMerger {
    streams: Vec<StreamState>,
    /// Highest SCN ever emitted (merge output is non-decreasing).
    emitted: Scn,
}

impl LogMerger {
    /// Merger over `streams` redo threads.
    pub fn new(streams: usize) -> Self {
        assert!(streams > 0, "merger needs at least one stream");
        LogMerger {
            streams: (0..streams).map(|_| StreamState::default()).collect(),
            emitted: Scn::ZERO,
        }
    }

    /// Feed records received from stream `idx`. Heartbeats advance the
    /// stream's watermark contribution and are swallowed; data records are
    /// buffered for ordered release.
    pub fn push(&mut self, idx: usize, records: Vec<RedoRecord>) {
        let s = &mut self.streams[idx];
        for r in records {
            debug_assert!(r.scn >= s.last_seen, "streams must deliver in non-decreasing SCN order");
            s.last_seen = s.last_seen.max(r.scn);
            if !matches!(r.payload, RedoPayload::Heartbeat) {
                s.buffer.push_back(r);
            }
        }
    }

    /// The merge watermark: records at or below it are safe to release.
    pub fn watermark(&self) -> Scn {
        self.streams.iter().map(|s| s.last_seen).min().unwrap_or(Scn::ZERO)
    }

    /// Release the next run of records in global SCN order, up to the
    /// watermark. Ties across streams break by stream index, keeping the
    /// output deterministic.
    pub fn pop_ready(&mut self) -> Vec<RedoRecord> {
        let watermark = self.watermark();
        let mut out = Vec::new();
        loop {
            let mut best: Option<(usize, Scn)> = None;
            for (i, s) in self.streams.iter().enumerate() {
                if let Some(head) = s.buffer.front() {
                    if head.scn <= watermark && best.is_none_or(|(_, scn)| head.scn < scn) {
                        best = Some((i, head.scn));
                    }
                }
            }
            match best {
                Some((i, scn)) => {
                    debug_assert!(scn >= self.emitted, "merge output must be ordered");
                    self.emitted = scn;
                    out.push(self.streams[i].buffer.pop_front().expect("head exists"));
                }
                None => break,
            }
        }
        out
    }

    /// Records buffered but not yet releasable (waiting on the watermark).
    pub fn held_back(&self) -> usize {
        self.streams.iter().map(|s| s.buffer.len()).sum()
    }

    /// Highest SCN seen from any stream (heartbeats included).
    pub fn max_seen(&self) -> Scn {
        self.streams.iter().map(|s| s.last_seen).max().unwrap_or(Scn::ZERO)
    }

    /// Spread between the fastest and slowest stream's last-seen SCN — the
    /// RAC stream skew the watermark has to wait out.
    pub fn stream_skew(&self) -> u64 {
        self.max_seen().0 - self.watermark().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::RedoThreadId;

    fn rec(thread: u8, scn: u64) -> RedoRecord {
        RedoRecord {
            thread: RedoThreadId(thread),
            scn: Scn(scn),
            born_us: 0,
            payload: RedoPayload::Change(vec![]),
        }
    }

    fn hb(thread: u8, scn: u64) -> RedoRecord {
        RedoRecord {
            thread: RedoThreadId(thread),
            scn: Scn(scn),
            born_us: 0,
            payload: RedoPayload::Heartbeat,
        }
    }

    #[test]
    fn single_stream_passthrough() {
        let mut m = LogMerger::new(1);
        m.push(0, vec![rec(1, 1), rec(1, 3), rec(1, 5)]);
        let out = m.pop_ready();
        assert_eq!(out.iter().map(|r| r.scn.0).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn merge_interleaves_two_streams() {
        let mut m = LogMerger::new(2);
        m.push(0, vec![rec(1, 1), rec(1, 4)]);
        m.push(1, vec![rec(2, 2), rec(2, 3)]);
        let out = m.pop_ready();
        // Stream 0 reached 4, stream 1 reached 3 → watermark 3.
        assert_eq!(out.iter().map(|r| r.scn.0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(m.held_back(), 1, "scn 4 awaits stream 1 progress");
        // A heartbeat from stream 1 releases it.
        m.push(1, vec![hb(2, 9)]);
        let out = m.pop_ready();
        assert_eq!(out.iter().map(|r| r.scn.0).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn empty_stream_holds_everything() {
        let mut m = LogMerger::new(2);
        m.push(0, vec![rec(1, 1)]);
        assert!(m.pop_ready().is_empty(), "stream 1 silent → watermark 0");
        assert_eq!(m.held_back(), 1);
    }

    #[test]
    fn heartbeats_swallowed_but_advance_watermark() {
        let mut m = LogMerger::new(2);
        m.push(0, vec![rec(1, 5)]);
        m.push(1, vec![hb(2, 10)]);
        let out = m.pop_ready();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].scn, Scn(5));
        assert_eq!(m.watermark(), Scn(5));
    }

    #[test]
    fn output_is_globally_sorted() {
        let mut m = LogMerger::new(3);
        m.push(0, vec![rec(1, 2), rec(1, 7), rec(1, 11)]);
        m.push(1, vec![rec(2, 1), rec(2, 9)]);
        m.push(2, vec![rec(3, 5), rec(3, 12)]);
        let out = m.pop_ready();
        let scns: Vec<u64> = out.iter().map(|r| r.scn.0).collect();
        let mut sorted = scns.clone();
        sorted.sort_unstable();
        assert_eq!(scns, sorted);
        // Watermark = min(11, 9, 12) = 9 → releasable: 1,2,5,7,9.
        assert_eq!(scns, vec![1, 2, 5, 7, 9]);
    }

    #[test]
    fn tie_breaks_deterministically_by_stream() {
        let mut m = LogMerger::new(2);
        m.push(0, vec![rec(1, 5)]);
        m.push(1, vec![rec(2, 5)]);
        let out = m.pop_ready();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].thread, RedoThreadId(1));
        assert_eq!(out[1].thread, RedoThreadId(2));
    }
}
