//! Per-redo-thread log buffers.
//!
//! Each primary (RAC) instance owns one redo thread and appends its records
//! here; the shipper drains the buffer toward the standby. SCN allocation
//! happens *inside* the append critical section, mirroring Oracle's redo
//! allocation latch: this guarantees records within one thread are appended
//! in strictly increasing SCN order, which the standby's log merger relies
//! on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use imadg_common::{Clock, RedoThreadId, Scn, ScnService, WakeToken};
use parking_lot::Mutex;

use crate::record::{RedoPayload, RedoRecord};

/// Cumulative generation statistics for one redo thread (Fig. 11 inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Records appended since startup.
    pub records: u64,
    /// Approximate bytes appended since startup.
    pub bytes: u64,
}

/// The in-memory redo log buffer of one redo thread.
#[derive(Debug)]
pub struct LogBuffer {
    thread: RedoThreadId,
    queue: Mutex<VecDeque<RedoRecord>>,
    last_scn: AtomicU64,
    records: AtomicU64,
    bytes: AtomicU64,
    /// Stamps each appended record's `born_us` (staleness origin).
    clock: Clock,
    /// Wakes the shipper stage on every append (threaded runtime).
    waker: Mutex<Option<WakeToken>>,
}

impl LogBuffer {
    /// Empty buffer for `thread`, stamping generation times off the real
    /// clock.
    pub fn new(thread: RedoThreadId) -> Self {
        LogBuffer::with_clock(thread, Clock::Real)
    }

    /// Empty buffer for `thread` stamping `born_us` off `clock` (manual
    /// clocks keep deterministic runs bit-identical).
    pub fn with_clock(thread: RedoThreadId, clock: Clock) -> Self {
        LogBuffer {
            thread,
            queue: Mutex::new(VecDeque::new()),
            last_scn: AtomicU64::new(0),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            clock,
            waker: Mutex::new(None),
        }
    }

    /// Wake `token` whenever a record is appended, so the shipper stage
    /// parks instead of polling.
    pub fn set_waker(&self, token: WakeToken) {
        *self.waker.lock() = Some(token);
    }

    fn wake(&self) {
        if let Some(w) = self.waker.lock().as_ref() {
            w.wake();
        }
    }

    /// This buffer's redo thread.
    pub fn thread(&self) -> RedoThreadId {
        self.thread
    }

    /// Allocate an SCN from `scns` and append the record built by `make`.
    ///
    /// Allocation and append happen under one latch so the buffer stays
    /// SCN-ordered even with concurrent committers.
    pub fn log_with<F: FnOnce(Scn) -> RedoPayload>(&self, scns: &ScnService, make: F) -> Scn {
        let mut q = self.queue.lock();
        let scn = scns.next();
        let record = RedoRecord {
            thread: self.thread,
            scn,
            born_us: self.clock.now_micros(),
            payload: make(scn),
        };
        self.account(&record);
        q.push_back(record);
        drop(q);
        self.wake();
        scn
    }

    /// Append a pre-built record (tests and replay tooling). Panics if it
    /// would break SCN ordering.
    pub fn push(&self, record: RedoRecord) {
        let mut q = self.queue.lock();
        if let Some(last) = q.back() {
            assert!(record.scn >= last.scn, "log buffer must stay SCN-ordered");
        }
        self.account(&record);
        q.push_back(record);
        drop(q);
        self.wake();
    }

    fn account(&self, record: &RedoRecord) {
        self.last_scn.store(record.scn.0, Ordering::Relaxed);
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(record.approx_bytes() as u64, Ordering::Relaxed);
    }

    /// Drain up to `max` records for shipping.
    pub fn drain(&self, max: usize) -> Vec<RedoRecord> {
        let mut q = self.queue.lock();
        let n = max.min(q.len());
        q.drain(..n).collect()
    }

    /// Number of buffered (not yet shipped) records.
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }

    /// Highest SCN ever appended.
    pub fn last_scn(&self) -> Scn {
        Scn(self.last_scn.load(Ordering::Relaxed))
    }

    /// Cumulative generation statistics.
    pub fn stats(&self) -> LogStats {
        LogStats {
            records: self.records.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{TenantId, TxnId};

    #[test]
    fn log_with_allocates_ordered_scns() {
        let scns = ScnService::new();
        let buf = LogBuffer::new(RedoThreadId(1));
        let s1 = buf
            .log_with(&scns, |_| RedoPayload::Begin { txn: TxnId(1), tenant: TenantId::DEFAULT });
        let s2 = buf.log_with(&scns, |_| RedoPayload::Heartbeat);
        assert!(s2 > s1);
        assert_eq!(buf.pending(), 2);
        assert_eq!(buf.last_scn(), s2);
        let drained = buf.drain(10);
        assert_eq!(drained.len(), 2);
        assert!(drained[0].scn < drained[1].scn);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn drain_respects_max() {
        let scns = ScnService::new();
        let buf = LogBuffer::new(RedoThreadId(1));
        for _ in 0..5 {
            buf.log_with(&scns, |_| RedoPayload::Heartbeat);
        }
        assert_eq!(buf.drain(2).len(), 2);
        assert_eq!(buf.pending(), 3);
    }

    #[test]
    fn stats_accumulate() {
        let scns = ScnService::new();
        let buf = LogBuffer::new(RedoThreadId(1));
        buf.log_with(&scns, |_| RedoPayload::Heartbeat);
        buf.log_with(&scns, |_| RedoPayload::Heartbeat);
        let st = buf.stats();
        assert_eq!(st.records, 2);
        assert!(st.bytes > 0);
    }

    #[test]
    #[should_panic(expected = "SCN-ordered")]
    fn out_of_order_push_panics() {
        let buf = LogBuffer::new(RedoThreadId(1));
        buf.push(RedoRecord {
            thread: RedoThreadId(1),
            scn: Scn(5),
            born_us: 0,
            payload: RedoPayload::Heartbeat,
        });
        buf.push(RedoRecord {
            thread: RedoThreadId(1),
            scn: Scn(3),
            born_us: 0,
            payload: RedoPayload::Heartbeat,
        });
    }
}
