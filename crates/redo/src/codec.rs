//! The binary redo-record codec shared by the wire format (`imadg-net`)
//! and the on-disk segment format ([`crate::durable`]).
//!
//! Records are encoded field-by-field with a hand-rolled layout (the
//! workspace's serde shim is deliberately minimal, and both a wire format
//! and a log-file format want explicit, versionable layout anyway).
//! Keeping one codec for both means a segment replayed from disk is
//! bit-identical to the batch that travelled the link — the recovery
//! pipeline cannot tell the difference, which is exactly the point.
//!
//! The persisted format is pluggable in the Adaptive-Logging sense: the
//! segment layer stores opaque encoded entries, so an alternative codec
//! (command logging, dictionary-compressed values) only has to provide
//! this module's `put_record`/`get_record` pair.

use imadg_common::{Dba, Error, ObjectId, RedoThreadId, Result, Scn, TenantId, TxnId};
use imadg_storage::{ChangeOp, ChangeVector, ColumnDef, ColumnType, Row, Schema, TableSpec, Value};

use crate::marker::{DdlKind, RedoMarker};
use crate::record::{CommitRecord, RedoPayload, RedoRecord};

/// CRC-32 (IEEE 802.3, reflected poly 0xEDB88320), bitwise — no table, no
/// external crate. Guards both wire frames and on-disk segment entries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(crc & 1));
        }
    }
    !crc
}

// ---- primitive writers ---------------------------------------------------

/// Append one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian u16.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over an encoded payload; every read is bounds-checked so a
/// corrupt-but-checksum-colliding buffer still fails cleanly.
pub struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Error::WireCorrupt("frame truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::WireCorrupt("invalid utf-8 string".into()))
    }

    /// Read a 0/1 boolean.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(Error::WireCorrupt(format!("bad bool tag {t}"))),
        }
    }

    /// Assert the buffer is fully consumed.
    pub fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Error::WireCorrupt("trailing bytes after frame".into()))
        }
    }
}

// ---- record codec --------------------------------------------------------

/// Encode one value.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Int(i) => {
            put_u8(out, 1);
            put_u64(out, *i as u64);
        }
        Value::Str(s) => {
            put_u8(out, 2);
            put_str(out, s);
        }
    }
}

/// Decode one value.
pub fn get_value(c: &mut Cur<'_>) -> Result<Value> {
    match c.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(c.i64()?)),
        2 => Ok(Value::str(c.str()?)),
        t => Err(Error::WireCorrupt(format!("bad value tag {t}"))),
    }
}

/// Encode one row image.
pub fn put_row(out: &mut Vec<u8>, row: &Row) {
    let vals = row.values();
    put_u16(out, vals.len() as u16);
    for v in vals {
        put_value(out, v);
    }
}

/// Decode one row image.
pub fn get_row(c: &mut Cur<'_>) -> Result<Row> {
    let n = c.u16()? as usize;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(get_value(c)?);
    }
    Ok(Row::new(vals))
}

/// Encode one change operation.
pub fn put_op(out: &mut Vec<u8>, op: &ChangeOp) {
    match op {
        ChangeOp::Format { capacity } => {
            put_u8(out, 0);
            put_u16(out, *capacity);
        }
        ChangeOp::Insert { slot, row } => {
            put_u8(out, 1);
            put_u16(out, *slot);
            put_row(out, row);
        }
        ChangeOp::Update { slot, row } => {
            put_u8(out, 2);
            put_u16(out, *slot);
            put_row(out, row);
        }
        ChangeOp::Delete { slot } => {
            put_u8(out, 3);
            put_u16(out, *slot);
        }
    }
}

/// Decode one change operation.
pub fn get_op(c: &mut Cur<'_>) -> Result<ChangeOp> {
    match c.u8()? {
        0 => Ok(ChangeOp::Format { capacity: c.u16()? }),
        1 => Ok(ChangeOp::Insert { slot: c.u16()?, row: get_row(c)? }),
        2 => Ok(ChangeOp::Update { slot: c.u16()?, row: get_row(c)? }),
        3 => Ok(ChangeOp::Delete { slot: c.u16()? }),
        t => Err(Error::WireCorrupt(format!("bad change-op tag {t}"))),
    }
}

/// Encode one change vector.
pub fn put_cv(out: &mut Vec<u8>, cv: &ChangeVector) {
    put_u64(out, cv.dba.0);
    put_u32(out, cv.object.0);
    put_u16(out, cv.tenant.0);
    put_u64(out, cv.txn.0);
    put_op(out, &cv.op);
}

/// Decode one change vector.
pub fn get_cv(c: &mut Cur<'_>) -> Result<ChangeVector> {
    Ok(ChangeVector {
        dba: Dba(c.u64()?),
        object: ObjectId(c.u32()?),
        tenant: TenantId(c.u16()?),
        txn: TxnId(c.u64()?),
        op: get_op(c)?,
    })
}

/// Encode one column type.
pub fn put_ctype(out: &mut Vec<u8>, t: ColumnType) {
    put_u8(
        out,
        match t {
            ColumnType::Int => 0,
            ColumnType::Varchar => 1,
        },
    );
}

/// Decode one column type.
pub fn get_ctype(c: &mut Cur<'_>) -> Result<ColumnType> {
    match c.u8()? {
        0 => Ok(ColumnType::Int),
        1 => Ok(ColumnType::Varchar),
        t => Err(Error::WireCorrupt(format!("bad column-type tag {t}"))),
    }
}

/// Encode one table spec (CREATE TABLE marker payload).
pub fn put_spec(out: &mut Vec<u8>, spec: &TableSpec) {
    put_u32(out, spec.id.0);
    put_str(out, &spec.name);
    put_u16(out, spec.tenant.0);
    let cols = spec.schema.all_columns();
    put_u16(out, cols.len() as u16);
    for col in cols {
        put_str(out, &col.name);
        put_ctype(out, col.ctype);
        put_u8(out, u8::from(col.dropped));
    }
    put_u32(out, spec.key_ordinal as u32);
    put_u16(out, spec.rows_per_block);
}

/// Decode one table spec.
pub fn get_spec(c: &mut Cur<'_>) -> Result<TableSpec> {
    let id = ObjectId(c.u32()?);
    let name = c.str()?;
    let tenant = TenantId(c.u16()?);
    let ncols = c.u16()? as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = c.str()?;
        let ctype = get_ctype(c)?;
        let dropped = c.bool()?;
        cols.push(ColumnDef { name: cname, ctype, dropped });
    }
    // CREATE TABLE markers always carry freshly-created (version 1)
    // schemas, so rebuilding through the validating constructor is exact.
    let schema = Schema::new(cols).map_err(|e| Error::WireCorrupt(e.to_string()))?;
    let key_ordinal = c.u32()? as usize;
    let rows_per_block = c.u16()?;
    Ok(TableSpec { id, name, tenant, schema, key_ordinal, rows_per_block })
}

/// Encode one DDL redo marker.
pub fn put_marker(out: &mut Vec<u8>, m: &RedoMarker) {
    put_u32(out, m.object.0);
    put_u16(out, m.tenant.0);
    match &m.ddl {
        DdlKind::CreateTable(spec) => {
            put_u8(out, 0);
            put_spec(out, spec);
        }
        DdlKind::AddColumn { name, ctype } => {
            put_u8(out, 1);
            put_str(out, name);
            put_ctype(out, *ctype);
        }
        DdlKind::DropColumn { name } => {
            put_u8(out, 2);
            put_str(out, name);
        }
        DdlKind::SetInMemory { enabled } => {
            put_u8(out, 3);
            put_u8(out, u8::from(*enabled));
        }
    }
}

/// Decode one DDL redo marker.
pub fn get_marker(c: &mut Cur<'_>) -> Result<RedoMarker> {
    let object = ObjectId(c.u32()?);
    let tenant = TenantId(c.u16()?);
    let ddl = match c.u8()? {
        0 => DdlKind::CreateTable(get_spec(c)?),
        1 => DdlKind::AddColumn { name: c.str()?, ctype: get_ctype(c)? },
        2 => DdlKind::DropColumn { name: c.str()? },
        3 => DdlKind::SetInMemory { enabled: c.bool()? },
        t => return Err(Error::WireCorrupt(format!("bad ddl tag {t}"))),
    };
    Ok(RedoMarker { object, tenant, ddl })
}

/// Encode one redo record.
pub fn put_record(out: &mut Vec<u8>, r: &RedoRecord) {
    put_u8(out, r.thread.0);
    put_u64(out, r.scn.0);
    put_u64(out, r.born_us);
    match &r.payload {
        RedoPayload::Begin { txn, tenant } => {
            put_u8(out, 0);
            put_u64(out, txn.0);
            put_u16(out, tenant.0);
        }
        RedoPayload::Change(cvs) => {
            put_u8(out, 1);
            put_u32(out, cvs.len() as u32);
            for cv in cvs {
                put_cv(out, cv);
            }
        }
        RedoPayload::Commit(cr) => {
            put_u8(out, 2);
            put_u64(out, cr.txn.0);
            put_u16(out, cr.tenant.0);
            put_u64(out, cr.commit_scn.0);
            put_u8(
                out,
                match cr.modified_inmemory {
                    None => 0,
                    Some(false) => 1,
                    Some(true) => 2,
                },
            );
        }
        RedoPayload::Abort { txn, tenant } => {
            put_u8(out, 3);
            put_u64(out, txn.0);
            put_u16(out, tenant.0);
        }
        RedoPayload::Marker(m) => {
            put_u8(out, 4);
            put_marker(out, m);
        }
        RedoPayload::Heartbeat => put_u8(out, 5),
    }
}

/// Decode one redo record.
pub fn get_record(c: &mut Cur<'_>) -> Result<RedoRecord> {
    let thread = RedoThreadId(c.u8()?);
    let scn = Scn(c.u64()?);
    let born_us = c.u64()?;
    let payload = match c.u8()? {
        0 => RedoPayload::Begin { txn: TxnId(c.u64()?), tenant: TenantId(c.u16()?) },
        1 => {
            let n = c.u32()? as usize;
            let mut cvs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                cvs.push(get_cv(c)?);
            }
            RedoPayload::Change(cvs)
        }
        2 => {
            let txn = TxnId(c.u64()?);
            let tenant = TenantId(c.u16()?);
            let commit_scn = Scn(c.u64()?);
            let modified_inmemory = match c.u8()? {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                t => return Err(Error::WireCorrupt(format!("bad commit-flag tag {t}"))),
            };
            RedoPayload::Commit(CommitRecord { txn, tenant, commit_scn, modified_inmemory })
        }
        3 => RedoPayload::Abort { txn: TxnId(c.u64()?), tenant: TenantId(c.u16()?) },
        4 => RedoPayload::Marker(get_marker(c)?),
        5 => RedoPayload::Heartbeat,
        t => return Err(Error::WireCorrupt(format!("bad payload tag {t}"))),
    };
    Ok(RedoRecord { thread, scn, born_us, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_storage::Schema;

    fn sample_records() -> Vec<RedoRecord> {
        let spec = TableSpec {
            id: ObjectId(7),
            name: "orders".into(),
            tenant: TenantId::DEFAULT,
            schema: Schema::of(&[("id", ColumnType::Int), ("note", ColumnType::Varchar)]),
            key_ordinal: 0,
            rows_per_block: 16,
        };
        vec![
            RedoRecord {
                thread: RedoThreadId(1),
                scn: Scn(10),
                born_us: 0,
                payload: RedoPayload::Marker(RedoMarker {
                    object: ObjectId(7),
                    tenant: TenantId::DEFAULT,
                    ddl: DdlKind::CreateTable(spec),
                }),
            },
            RedoRecord {
                thread: RedoThreadId(1),
                scn: Scn(11),
                born_us: 7,
                payload: RedoPayload::Begin { txn: TxnId(3), tenant: TenantId::DEFAULT },
            },
            RedoRecord {
                thread: RedoThreadId(1),
                scn: Scn(11),
                born_us: 8,
                payload: RedoPayload::Change(vec![ChangeVector {
                    dba: Dba(42),
                    object: ObjectId(7),
                    tenant: TenantId::DEFAULT,
                    txn: TxnId(3),
                    op: ChangeOp::Insert {
                        slot: 0,
                        row: Row::new(vec![Value::Int(1), Value::str("hi"), Value::Null]),
                    },
                }]),
            },
            RedoRecord {
                thread: RedoThreadId(1),
                scn: Scn(12),
                born_us: 9,
                payload: RedoPayload::Commit(CommitRecord {
                    txn: TxnId(3),
                    tenant: TenantId::DEFAULT,
                    commit_scn: Scn(12),
                    modified_inmemory: Some(true),
                }),
            },
            RedoRecord {
                thread: RedoThreadId(1),
                scn: Scn(13),
                born_us: 10,
                payload: RedoPayload::Abort { txn: TxnId(4), tenant: TenantId::DEFAULT },
            },
            RedoRecord {
                thread: RedoThreadId(1),
                scn: Scn(14),
                born_us: 11,
                payload: RedoPayload::Heartbeat,
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        let records = sample_records();
        let mut buf = Vec::new();
        for r in &records {
            put_record(&mut buf, r);
        }
        let mut c = Cur::new(&buf);
        let mut got = Vec::new();
        for _ in 0..records.len() {
            got.push(get_record(&mut c).unwrap());
        }
        c.done().unwrap();
        assert_eq!(format!("{got:?}"), format!("{records:?}"));
    }

    #[test]
    fn truncated_record_fails_cleanly() {
        let mut buf = Vec::new();
        put_record(&mut buf, &sample_records()[2]);
        for cut in 0..buf.len() {
            let mut c = Cur::new(&buf[..cut]);
            assert!(get_record(&mut c).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
