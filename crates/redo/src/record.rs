//! Redo records: the units shipped from the primary to the standby.
//!
//! A redo record groups change vectors generated at one SCN (paper §II.A).
//! Transaction control information — begin, commit, abort — travels as
//! dedicated records; the commit record carries the commit SCN and, with
//! *specialized redo generation* enabled (§III.E), a flag saying whether the
//! transaction modified any object enabled for in-memory population.

use imadg_common::{RedoThreadId, Scn, TenantId, TxnId};
use imadg_storage::{ChangeOp, ChangeVector, Value};

use crate::marker::RedoMarker;

/// A transaction's commit record.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// Committing transaction.
    pub txn: TxnId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// The commit SCN: the database time at which the transaction's changes
    /// become atomically visible.
    pub commit_scn: Scn,
    /// Specialized redo annotation: `Some(true)` when the transaction
    /// modified an in-memory-enabled object, `Some(false)` when it did not,
    /// `None` when annotation is disabled on the primary (the standby must
    /// then assume pessimistically, §III.E).
    pub modified_inmemory: Option<bool>,
}

/// Payload of one redo record.
#[derive(Debug, Clone)]
pub enum RedoPayload {
    /// Transaction begin control record.
    Begin {
        /// The starting transaction.
        txn: TxnId,
        /// Owning tenant.
        tenant: TenantId,
    },
    /// Data changes: all CVs were generated at this record's SCN.
    Change(Vec<ChangeVector>),
    /// Transaction commit ("a commit CV applied to a special block").
    Commit(CommitRecord),
    /// Transaction rollback.
    Abort {
        /// The aborting transaction.
        txn: TxnId,
        /// Owning tenant.
        tenant: TenantId,
    },
    /// DDL redo marker (changes to non-persistent structures, §III.G).
    Marker(RedoMarker),
    /// SCN heartbeat: lets the standby's log merger advance its watermark
    /// past idle redo threads (RAC instances write periodic heartbeat redo).
    Heartbeat,
}

/// One redo record.
#[derive(Debug, Clone)]
pub struct RedoRecord {
    /// Generating redo thread (one per primary RAC instance).
    pub thread: RedoThreadId,
    /// SCN at which the record's changes were made.
    pub scn: Scn,
    /// Generation timestamp (µs on the deployment clock), stamped when the
    /// record entered the log buffer. Travels on the wire and to disk so
    /// the standby can measure commit-to-queryable staleness; 0 = unstamped.
    pub born_us: u64,
    /// The payload.
    pub payload: RedoPayload,
}

impl RedoRecord {
    /// Approximate wire size in bytes, for log-advancement plots (Fig. 11).
    pub fn approx_bytes(&self) -> usize {
        const HEADER: usize = 24;
        HEADER
            + match &self.payload {
                RedoPayload::Begin { .. } | RedoPayload::Abort { .. } => 16,
                RedoPayload::Commit(_) => 32,
                RedoPayload::Heartbeat => 8,
                RedoPayload::Marker(_) => 64,
                RedoPayload::Change(cvs) => cvs.iter().map(cv_bytes).sum(),
            }
    }

    /// The transaction this record belongs to, for control records.
    pub fn control_txn(&self) -> Option<TxnId> {
        match &self.payload {
            RedoPayload::Begin { txn, .. } | RedoPayload::Abort { txn, .. } => Some(*txn),
            RedoPayload::Commit(c) => Some(c.txn),
            _ => None,
        }
    }
}

fn cv_bytes(cv: &ChangeVector) -> usize {
    const CV_HEADER: usize = 40;
    CV_HEADER
        + match &cv.op {
            ChangeOp::Format { .. } => 8,
            ChangeOp::Delete { .. } => 8,
            ChangeOp::Insert { row, .. } | ChangeOp::Update { row, .. } => {
                8 + row
                    .values()
                    .iter()
                    .map(|v| match v {
                        Value::Null => 1,
                        Value::Int(_) => 9,
                        Value::Str(s) => 3 + s.len(),
                    })
                    .sum::<usize>()
            }
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{Dba, ObjectId};
    use imadg_storage::Row;

    fn rec(payload: RedoPayload) -> RedoRecord {
        RedoRecord { thread: RedoThreadId(1), scn: Scn(10), born_us: 0, payload }
    }

    #[test]
    fn control_txn_extraction() {
        let t = TxnId(5);
        assert_eq!(
            rec(RedoPayload::Begin { txn: t, tenant: TenantId::DEFAULT }).control_txn(),
            Some(t)
        );
        assert_eq!(
            rec(RedoPayload::Abort { txn: t, tenant: TenantId::DEFAULT }).control_txn(),
            Some(t)
        );
        let c = CommitRecord {
            txn: t,
            tenant: TenantId::DEFAULT,
            commit_scn: Scn(10),
            modified_inmemory: Some(true),
        };
        assert_eq!(rec(RedoPayload::Commit(c)).control_txn(), Some(t));
        assert_eq!(rec(RedoPayload::Heartbeat).control_txn(), None);
        assert_eq!(rec(RedoPayload::Change(vec![])).control_txn(), None);
    }

    #[test]
    fn sizes_scale_with_row_payload() {
        let small = rec(RedoPayload::Change(vec![ChangeVector {
            dba: Dba(1),
            object: ObjectId(1),
            tenant: TenantId::DEFAULT,
            txn: TxnId(1),
            op: ChangeOp::Insert { slot: 0, row: Row::new(vec![Value::Int(1)]) },
        }]));
        let big = rec(RedoPayload::Change(vec![ChangeVector {
            dba: Dba(1),
            object: ObjectId(1),
            tenant: TenantId::DEFAULT,
            txn: TxnId(1),
            op: ChangeOp::Insert { slot: 0, row: Row::new(vec![Value::str("x".repeat(100))]) },
        }]));
        assert!(big.approx_bytes() > small.approx_bytes());
        assert!(rec(RedoPayload::Heartbeat).approx_bytes() < small.approx_bytes());
    }
}
