//! `imadg-redo`: the redo layer.
//!
//! Change vectors are defined by `imadg-storage`; this crate wraps them in
//! redo records with transaction control information (begin / commit /
//! abort), DDL redo markers, per-thread log buffers with latched SCN
//! allocation, the shipping transport with simulated network latency, and
//! the standby-side SCN-ordered log merger (paper §II.A, §III.E, §III.G).

pub mod codec;
pub mod durable;
pub mod log_buffer;
pub mod marker;
pub mod merger;
pub mod record;
pub mod transport;

pub use durable::{
    read_checkpoint, write_checkpoint, Checkpoint, DiskBatch, DurableLog, ReplaySource,
};
pub use log_buffer::{LogBuffer, LogStats};
pub use marker::{DdlKind, RedoMarker};
pub use merger::LogMerger;
pub use record::{CommitRecord, RedoPayload, RedoRecord};
pub use transport::{
    redo_link, redo_link_with_clock, FanoutSink, RedoReceiver, RedoSender, RedoSink, RedoSource,
    Shipper,
};
