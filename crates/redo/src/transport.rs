//! Redo shipping: the link between primary and standby.
//!
//! The paper's primary ships redo over TCP/IP to a typically remote standby
//! (§I). The link is abstracted behind [`RedoSink`] / [`RedoSource`] so the
//! shipping and ingest stages are agnostic to how redo travels: the
//! in-process channel below is the lossless baseline, and `imadg-net`
//! provides framed links (in-process pipe or loopback TCP) with gap
//! detection, NAK/retransmission, and seeded fault injection.
//!
//! The channel link models shipping delay without real sockets: batches
//! become visible to the receiver only after their `available_at_us`
//! deadline on the link's [`Clock`]. Latency tests inject a manual clock
//! and advance virtual time instead of sleeping the delay out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use imadg_common::metrics::{DurabilityMetrics, StalenessTracker, TransportMetrics};
use imadg_common::{Clock, Error, Result, Scn, WakeToken};

use crate::durable::DurableLog;
use crate::log_buffer::LogBuffer;
use crate::record::{RedoPayload, RedoRecord};

/// Primary-side half of a redo link: accepts record batches and performs
/// whatever protocol work the link needs (retransmits, liveness pings).
pub trait RedoSink: Send + Sync {
    /// Ship a batch of records.
    fn send(&self, records: Vec<RedoRecord>) -> Result<()>;

    /// Run one quantum of link protocol work — serve NAKs from the
    /// retained window, trim on ACKs, emit liveness pings. Returns whether
    /// anything was done. The lossless channel has no protocol.
    fn service(&self) -> Result<bool> {
        Ok(false)
    }

    /// Whether the link still holds state that needs servicing before the
    /// pipeline can quiesce (unacknowledged frames in flight).
    fn pending(&self) -> bool {
        false
    }

    /// Wake `token` whenever shipped redo becomes deliverable *now*, so
    /// the standby's ingest stage parks instead of polling. Latent links
    /// must not wake on send — the receiver re-arms for the deadline via
    /// [`RedoSource::time_to_next`].
    fn set_waker(&self, token: WakeToken);

    /// Lane-addressed waker for fan-out sinks feeding several standbys:
    /// wake `token` when lane `lane`'s shipped redo becomes deliverable.
    /// Single-lane sinks only honour lane 0 (identical to [`set_waker`]),
    /// so single-standby wiring is unchanged.
    ///
    /// [`set_waker`]: RedoSink::set_waker
    fn set_lane_waker(&self, lane: usize, token: WakeToken) {
        if lane == 0 {
            self.set_waker(token);
        }
    }

    /// Attach the primary-side transport metrics (retransmits served,
    /// reconnects, pings). Links are built before the owning registry, so
    /// binding happens late.
    fn bind_metrics(&self, metrics: Arc<TransportMetrics>) {
        let _ = metrics;
    }

    /// Attach the primary-side durability metrics (wal appends, fsyncs,
    /// archive retransmits). No-op on links without a durable log.
    fn bind_durability_metrics(&self, metrics: Arc<DurabilityMetrics>) {
        let _ = metrics;
    }
}

/// Standby-side half of a redo link: yields records in ship order and
/// reports how much transport state is still outstanding.
pub trait RedoSource: Send {
    /// Drain everything currently deliverable, in order. A reliable source
    /// must deliver exactly-once in-order — the log merger downstream
    /// asserts per-thread SCN monotonicity.
    fn drain_ready(&mut self) -> Result<Vec<RedoRecord>>;

    /// Whether the link still holds undelivered or unresolved state — a
    /// latent batch in flight, an open gap, out-of-order frames buffered.
    fn transport_pending(&self) -> bool;

    /// Whether the last drain performed protocol work (sent a NAK or ACK)
    /// even if no records came out. Protocol activity counts as stage
    /// progress so the step scheduler keeps driving gap resolution.
    fn take_protocol_activity(&mut self) -> bool {
        false
    }

    /// Time until the next held batch becomes deliverable, if the link is
    /// holding one for a latency deadline. Drives the ingest stage's park
    /// hint so delayed redo is picked up exactly on time.
    fn time_to_next(&self) -> Option<Duration>;

    /// Attach the standby-side transport metrics (gaps, NAKs, duplicates).
    fn bind_metrics(&mut self, metrics: Arc<TransportMetrics>) {
        let _ = metrics;
    }

    /// Attach the standby-side durability metrics (tee appends, fsyncs,
    /// restart replay). No-op on links without a durable log.
    fn bind_durability_metrics(&mut self, metrics: Arc<DurabilityMetrics>) {
        let _ = metrics;
    }

    /// Group-commit the standby-side durable tee: one fsync covering every
    /// batch accepted since the last call. Returns whether anything was
    /// synced. Sources without a durable log do nothing.
    fn durable_sync(&mut self) -> Result<bool> {
        Ok(false)
    }

    /// The durable log teeing this source's accepted batches, if any.
    fn durable_log(&self) -> Option<Arc<DurableLog>> {
        None
    }

    /// Model a hard process restart over a surviving medium: discard the
    /// unsynced tee buffer and all in-memory reassembly state, and resume
    /// delivery just past the durable sequence — subsequent gaps are
    /// NAK-resolved from the primary's retained window or archive.
    fn reset_for_restart(&mut self) -> Result<()> {
        Ok(())
    }
}

struct Batch {
    records: Vec<RedoRecord>,
    /// Clock micros at which the batch becomes deliverable.
    available_at_us: u64,
}

/// Sending half of the in-process channel link.
#[derive(Clone)]
pub struct RedoSender {
    tx: Sender<Batch>,
    latency_us: u64,
    clock: Clock,
    /// Wakes the receiving stage on every zero-latency send (threaded
    /// runtime). Shared across clones so the standby can install it after
    /// link creation.
    waker: Arc<parking_lot::Mutex<Option<WakeToken>>>,
}

impl RedoSender {
    /// See [`RedoSink::set_waker`].
    pub fn set_waker(&self, token: WakeToken) {
        *self.waker.lock() = Some(token);
    }

    /// Ship a batch of records.
    pub fn send(&self, records: Vec<RedoRecord>) -> Result<()> {
        self.tx
            .send(Batch {
                records,
                available_at_us: self.clock.now_micros().saturating_add(self.latency_us),
            })
            .map_err(|_| Error::TransportClosed)?;
        // Only a zero-latency batch is deliverable now; waking for a
        // latent one would be spurious — the receiver finds nothing due
        // and parks again. The ingest stage re-arms for the delivery
        // deadline through `time_to_next` instead.
        if self.latency_us == 0 {
            if let Some(w) = self.waker.lock().as_ref() {
                w.wake();
            }
        }
        Ok(())
    }
}

impl RedoSink for RedoSender {
    fn send(&self, records: Vec<RedoRecord>) -> Result<()> {
        RedoSender::send(self, records)
    }

    fn set_waker(&self, token: WakeToken) {
        RedoSender::set_waker(self, token)
    }
}

/// Receiving half of the in-process channel link. Single-consumer: owned
/// by the standby's log merger pump.
pub struct RedoReceiver {
    rx: Receiver<Batch>,
    clock: Clock,
    /// A batch whose latency deadline has not yet passed.
    pending: Option<Batch>,
}

impl RedoReceiver {
    /// Non-blocking receive honouring shipping latency. `Ok(None)` means
    /// nothing is deliverable right now.
    pub fn try_recv(&mut self) -> Result<Option<Vec<RedoRecord>>> {
        let batch = match self.pending.take() {
            Some(b) => b,
            None => match self.rx.try_recv() {
                Ok(b) => b,
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(Error::TransportClosed),
            },
        };
        if batch.available_at_us <= self.clock.now_micros() {
            Ok(Some(batch.records))
        } else {
            self.pending = Some(batch);
            Ok(None)
        }
    }

    /// Drain everything currently deliverable.
    pub fn drain_ready(&mut self) -> Result<Vec<RedoRecord>> {
        let mut out = Vec::new();
        while let Some(mut records) = self.try_recv()? {
            out.append(&mut records);
        }
        Ok(out)
    }
}

impl RedoSource for RedoReceiver {
    fn drain_ready(&mut self) -> Result<Vec<RedoRecord>> {
        RedoReceiver::drain_ready(self)
    }

    fn transport_pending(&self) -> bool {
        self.pending.is_some() || !self.rx.is_empty()
    }

    fn time_to_next(&self) -> Option<Duration> {
        let b = self.pending.as_ref()?;
        Some(Duration::from_micros(b.available_at_us.saturating_sub(self.clock.now_micros())))
    }
}

/// Create a redo link with the given one-way latency on the real clock.
pub fn redo_link(latency: Duration) -> (RedoSender, RedoReceiver) {
    redo_link_with_clock(latency, Clock::Real)
}

/// Create a redo link measuring its latency against an injected clock
/// (virtual time in tests).
pub fn redo_link_with_clock(latency: Duration, clock: Clock) -> (RedoSender, RedoReceiver) {
    let (tx, rx) = unbounded();
    (
        RedoSender {
            tx,
            latency_us: latency.as_micros().min(u128::from(u64::MAX)) as u64,
            clock: clock.clone(),
            waker: Arc::default(),
        },
        RedoReceiver { rx, clock, pending: None },
    )
}

/// A lossless fan-out over per-lane sinks: every sent batch is cloned to
/// each lane. This is the in-process reader-farm link — each standby gets
/// its own channel, and there is no window/ACK protocol to share (the
/// framed fan-out with one retained window lives in `imadg-net`).
pub struct FanoutSink {
    lanes: Vec<Box<dyn RedoSink>>,
}

impl FanoutSink {
    /// Fan out over `lanes` (one per standby, in standby order).
    pub fn new(lanes: Vec<Box<dyn RedoSink>>) -> FanoutSink {
        FanoutSink { lanes }
    }
}

impl RedoSink for FanoutSink {
    fn send(&self, records: Vec<RedoRecord>) -> Result<()> {
        let Some((last, head)) = self.lanes.split_last() else { return Ok(()) };
        for lane in head {
            lane.send(records.clone())?;
        }
        last.send(records)
    }

    fn service(&self) -> Result<bool> {
        let mut moved = false;
        for lane in &self.lanes {
            moved |= lane.service()?;
        }
        Ok(moved)
    }

    fn pending(&self) -> bool {
        self.lanes.iter().any(|l| l.pending())
    }

    fn set_waker(&self, token: WakeToken) {
        self.set_lane_waker(0, token);
    }

    fn set_lane_waker(&self, lane: usize, token: WakeToken) {
        if let Some(l) = self.lanes.get(lane) {
            l.set_waker(token);
        }
    }

    fn bind_metrics(&self, metrics: Arc<TransportMetrics>) {
        for lane in &self.lanes {
            lane.bind_metrics(metrics.clone());
        }
    }
}

/// The shipping process of one redo thread: drains the log buffer into the
/// link, emitting an SCN heartbeat when the buffer is idle so the standby's
/// merge watermark keeps advancing.
pub struct Shipper {
    batch: usize,
    metrics: Arc<TransportMetrics>,
    /// Records commit-record generation→ship residency, when attached.
    staleness: Option<Arc<StalenessTracker>>,
    /// Highest SCN already signalled down the link (data or heartbeat). A
    /// heartbeat is sent only when database time has advanced past it —
    /// re-sending the same SCN adds no watermark information and, on a
    /// reliable link, would keep generating frames (and ACK round-trips)
    /// forever, so an idle pipeline could never quiesce.
    signalled_scn: AtomicU64,
}

impl Shipper {
    /// Shipper draining up to `batch` records per call.
    pub fn new(batch: usize) -> Self {
        Self::with_metrics(batch, Arc::default())
    }

    /// Shipper reporting into a registry's transport stage.
    pub fn with_metrics(batch: usize, metrics: Arc<TransportMetrics>) -> Self {
        Shipper { batch: batch.max(1), metrics, staleness: None, signalled_scn: AtomicU64::new(0) }
    }

    /// Record generation→ship residency of commit records into `tracker`.
    pub fn with_staleness(mut self, tracker: Arc<StalenessTracker>) -> Self {
        self.staleness = Some(tracker);
        self
    }

    fn send_heartbeat(&self, buffer: &LogBuffer, sink: &dyn RedoSink, scn: Scn) -> Result<()> {
        sink.send(vec![RedoRecord {
            thread: buffer.thread(),
            scn,
            born_us: 0,
            payload: RedoPayload::Heartbeat,
        }])?;
        self.metrics.heartbeats.inc();
        self.metrics.batches_shipped.inc();
        Ok(())
    }

    /// Heartbeat only when database time moved past everything already
    /// signalled down the link.
    fn maybe_heartbeat(&self, buffer: &LogBuffer, sink: &dyn RedoSink, scn: Scn) -> Result<()> {
        if scn > Scn::ZERO && scn.0 > self.signalled_scn.load(Ordering::Acquire) {
            self.signalled_scn.store(scn.0, Ordering::Release);
            self.send_heartbeat(buffer, sink, scn)?;
        }
        Ok(())
    }

    fn send_data(&self, sink: &dyn RedoSink, records: Vec<RedoRecord>) -> Result<()> {
        self.metrics.records_shipped.add(records.len() as u64);
        self.metrics.bytes_shipped.add(records.iter().map(|r| r.approx_bytes() as u64).sum());
        self.metrics.batches_shipped.inc();
        if let Some(max) = records.iter().map(|r| r.scn.0).max() {
            self.signalled_scn.fetch_max(max, Ordering::AcqRel);
        }
        if let Some(t) = &self.staleness {
            for r in &records {
                if matches!(r.payload, RedoPayload::Commit(_)) {
                    t.on_ship(r.scn.0, r.born_us);
                }
            }
        }
        sink.send(records)
    }

    /// Ship one batch and run one quantum of link protocol work.
    /// `current_scn` stamps the heartbeat when the buffer is empty.
    /// Returns the number of data records shipped.
    pub fn ship_once(
        &self,
        buffer: &LogBuffer,
        sink: &dyn RedoSink,
        current_scn: Scn,
    ) -> Result<usize> {
        let records = buffer.drain(self.batch);
        let n = records.len();
        if records.is_empty() {
            self.maybe_heartbeat(buffer, sink, current_scn)?;
        } else {
            self.send_data(sink, records)?;
        }
        sink.service()?;
        Ok(n)
    }

    /// Ship until the buffer is drained (step-mode pump).
    pub fn ship_all(
        &self,
        buffer: &LogBuffer,
        sink: &dyn RedoSink,
        current_scn: Scn,
    ) -> Result<usize> {
        let mut total = 0;
        loop {
            let records = buffer.drain(self.batch);
            if records.is_empty() {
                break;
            }
            total += records.len();
            self.send_data(sink, records)?;
        }
        if total == 0 {
            self.maybe_heartbeat(buffer, sink, current_scn)?;
        }
        sink.service()?;
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{RedoThreadId, ScnService};

    fn hb(scn: u64) -> RedoRecord {
        RedoRecord {
            thread: RedoThreadId(1),
            scn: Scn(scn),
            born_us: 0,
            payload: RedoPayload::Heartbeat,
        }
    }

    #[test]
    fn zero_latency_delivers_immediately() {
        let (tx, mut rx) = redo_link(Duration::ZERO);
        tx.send(vec![hb(1), hb(2)]).unwrap();
        assert_eq!(rx.drain_ready().unwrap().len(), 2);
        assert!(rx.try_recv().unwrap().is_none());
    }

    #[test]
    fn latency_delays_delivery() {
        // Virtual time: no wall-clock sleeping, no flake.
        let clock = Clock::manual();
        let (tx, mut rx) = redo_link_with_clock(Duration::from_millis(30), clock.clone());
        tx.send(vec![hb(1)]).unwrap();
        assert!(rx.try_recv().unwrap().is_none(), "not deliverable yet");
        assert!(RedoSource::transport_pending(&rx), "held batch counts as pending");
        let eta = RedoSource::time_to_next(&rx).unwrap();
        assert_eq!(eta, Duration::from_millis(30), "park hint targets the deadline");
        clock.advance(Duration::from_millis(29));
        assert!(rx.try_recv().unwrap().is_none(), "still in flight");
        clock.advance(Duration::from_millis(1));
        assert_eq!(rx.try_recv().unwrap().unwrap().len(), 1);
        assert!(!RedoSource::transport_pending(&rx));
    }

    #[test]
    fn sender_wakes_receiver_token() {
        let (tx, _rx) = redo_link(Duration::ZERO);
        let token = WakeToken::new();
        tx.set_waker(token.clone());
        tx.send(vec![hb(1)]).unwrap();
        assert!(token.park(Duration::from_secs(5)), "send latched a wake");
    }

    #[test]
    fn latent_send_does_not_wake() {
        // The spurious-wake fix: a batch that is not yet deliverable must
        // not wake the ingest stage — it would find nothing and re-park.
        let clock = Clock::manual();
        let (tx, _rx) = redo_link_with_clock(Duration::from_millis(30), clock);
        let token = WakeToken::new();
        tx.set_waker(token.clone());
        tx.send(vec![hb(1)]).unwrap();
        assert!(!token.park(Duration::ZERO), "no wake latched for a latent batch");
    }

    #[test]
    fn ordering_preserved_across_batches() {
        let (tx, mut rx) = redo_link(Duration::ZERO);
        tx.send(vec![hb(1)]).unwrap();
        tx.send(vec![hb(2)]).unwrap();
        let got = rx.drain_ready().unwrap();
        assert_eq!(got.iter().map(|r| r.scn.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn closed_link_errors() {
        let (tx, rx) = redo_link(Duration::ZERO);
        drop(rx);
        assert!(tx.send(vec![hb(1)]).is_err());
    }

    #[test]
    fn shipper_heartbeats_idle_buffer() {
        let scns = ScnService::new();
        scns.next(); // advance database time
        let buf = LogBuffer::new(RedoThreadId(1));
        let (tx, mut rx) = redo_link(Duration::ZERO);
        let shipper = Shipper::new(8);
        let shipped = shipper.ship_once(&buf, &tx, scns.current()).unwrap();
        assert_eq!(shipped, 0);
        let got = rx.drain_ready().unwrap();
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0].payload, RedoPayload::Heartbeat));
        assert_eq!(got[0].scn, Scn(1));
    }

    #[test]
    fn shipper_dedups_heartbeats_at_same_scn() {
        let scns = ScnService::new();
        scns.next();
        let buf = LogBuffer::new(RedoThreadId(1));
        let (tx, mut rx) = redo_link(Duration::ZERO);
        let shipper = Shipper::new(8);
        for _ in 0..5 {
            shipper.ship_once(&buf, &tx, scns.current()).unwrap();
        }
        assert_eq!(rx.drain_ready().unwrap().len(), 1, "one heartbeat per SCN advance");
        scns.next();
        shipper.ship_all(&buf, &tx, scns.current()).unwrap();
        assert_eq!(rx.drain_ready().unwrap().len(), 1, "new SCN earns a fresh heartbeat");
    }

    #[test]
    fn shipper_drains_buffer() {
        let scns = ScnService::new();
        let buf = LogBuffer::new(RedoThreadId(1));
        for _ in 0..20 {
            buf.log_with(&scns, |_| RedoPayload::Heartbeat);
        }
        let (tx, mut rx) = redo_link(Duration::ZERO);
        let shipped = Shipper::new(8).ship_all(&buf, &tx, scns.current()).unwrap();
        assert_eq!(shipped, 20);
        assert_eq!(rx.drain_ready().unwrap().len(), 20);
        assert_eq!(buf.pending(), 0);
    }
}
