//! Redo shipping: the simulated network between primary and standby.
//!
//! The paper's primary ships redo over TCP/IP to a typically remote standby
//! (§I). We model the link as an in-process channel with a configurable
//! one-way latency; batches become visible to the receiver only after their
//! `available_at_us` deadline on the link's [`Clock`], which reproduces
//! shipping delay without real sockets (see DESIGN.md substitutions).
//! Latency tests inject a manual clock and advance virtual time instead of
//! sleeping the delay out.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use imadg_common::metrics::TransportMetrics;
use imadg_common::{Clock, Error, Result, Scn, WakeToken};

use crate::log_buffer::LogBuffer;
use crate::record::{RedoPayload, RedoRecord};

struct Batch {
    records: Vec<RedoRecord>,
    /// Clock micros at which the batch becomes deliverable.
    available_at_us: u64,
}

/// Sending half of a redo link.
#[derive(Clone)]
pub struct RedoSender {
    tx: Sender<Batch>,
    latency_us: u64,
    clock: Clock,
    /// Wakes the receiving stage on every send (threaded runtime). Shared
    /// across clones so the standby can install it after link creation.
    waker: Arc<parking_lot::Mutex<Option<WakeToken>>>,
}

impl RedoSender {
    /// Wake `token` whenever a batch is shipped, so the standby's ingest
    /// stage parks instead of polling.
    pub fn set_waker(&self, token: WakeToken) {
        *self.waker.lock() = Some(token);
    }

    /// Ship a batch of records.
    pub fn send(&self, records: Vec<RedoRecord>) -> Result<()> {
        self.tx
            .send(Batch {
                records,
                available_at_us: self.clock.now_micros().saturating_add(self.latency_us),
            })
            .map_err(|_| Error::TransportClosed)?;
        if let Some(w) = self.waker.lock().as_ref() {
            w.wake();
        }
        Ok(())
    }
}

/// Receiving half of a redo link. Single-consumer: owned by the standby's
/// log merger pump.
pub struct RedoReceiver {
    rx: Receiver<Batch>,
    clock: Clock,
    /// A batch whose latency deadline has not yet passed.
    pending: Option<Batch>,
}

impl RedoReceiver {
    /// Non-blocking receive honouring shipping latency. `Ok(None)` means
    /// nothing is deliverable right now.
    pub fn try_recv(&mut self) -> Result<Option<Vec<RedoRecord>>> {
        let batch = match self.pending.take() {
            Some(b) => b,
            None => match self.rx.try_recv() {
                Ok(b) => b,
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(Error::TransportClosed),
            },
        };
        if batch.available_at_us <= self.clock.now_micros() {
            Ok(Some(batch.records))
        } else {
            self.pending = Some(batch);
            Ok(None)
        }
    }

    /// Drain everything currently deliverable.
    pub fn drain_ready(&mut self) -> Result<Vec<RedoRecord>> {
        let mut out = Vec::new();
        while let Some(mut records) = self.try_recv()? {
            out.append(&mut records);
        }
        Ok(out)
    }
}

/// Create a redo link with the given one-way latency on the real clock.
pub fn redo_link(latency: Duration) -> (RedoSender, RedoReceiver) {
    redo_link_with_clock(latency, Clock::Real)
}

/// Create a redo link measuring its latency against an injected clock
/// (virtual time in tests).
pub fn redo_link_with_clock(latency: Duration, clock: Clock) -> (RedoSender, RedoReceiver) {
    let (tx, rx) = unbounded();
    (
        RedoSender {
            tx,
            latency_us: latency.as_micros().min(u128::from(u64::MAX)) as u64,
            clock: clock.clone(),
            waker: Arc::default(),
        },
        RedoReceiver { rx, clock, pending: None },
    )
}

/// The shipping process of one redo thread: drains the log buffer into the
/// link, emitting an SCN heartbeat when the buffer is idle so the standby's
/// merge watermark keeps advancing.
pub struct Shipper {
    batch: usize,
    metrics: Arc<TransportMetrics>,
}

impl Shipper {
    /// Shipper draining up to `batch` records per call.
    pub fn new(batch: usize) -> Self {
        Self::with_metrics(batch, Arc::default())
    }

    /// Shipper reporting into a registry's transport stage.
    pub fn with_metrics(batch: usize, metrics: Arc<TransportMetrics>) -> Self {
        Shipper { batch: batch.max(1), metrics }
    }

    fn send_heartbeat(&self, buffer: &LogBuffer, sender: &RedoSender, scn: Scn) -> Result<()> {
        sender.send(vec![RedoRecord {
            thread: buffer.thread(),
            scn,
            payload: RedoPayload::Heartbeat,
        }])?;
        self.metrics.heartbeats.inc();
        self.metrics.batches_shipped.inc();
        Ok(())
    }

    fn send_data(&self, sender: &RedoSender, records: Vec<RedoRecord>) -> Result<()> {
        self.metrics.records_shipped.add(records.len() as u64);
        self.metrics.bytes_shipped.add(records.iter().map(|r| r.approx_bytes() as u64).sum());
        self.metrics.batches_shipped.inc();
        sender.send(records)
    }

    /// Ship one batch. `current_scn` stamps the heartbeat when the buffer
    /// is empty. Returns the number of data records shipped.
    pub fn ship_once(
        &self,
        buffer: &LogBuffer,
        sender: &RedoSender,
        current_scn: Scn,
    ) -> Result<usize> {
        let records = buffer.drain(self.batch);
        if records.is_empty() {
            if current_scn > Scn::ZERO {
                self.send_heartbeat(buffer, sender, current_scn)?;
            }
            return Ok(0);
        }
        let n = records.len();
        self.send_data(sender, records)?;
        Ok(n)
    }

    /// Ship until the buffer is drained (step-mode pump).
    pub fn ship_all(
        &self,
        buffer: &LogBuffer,
        sender: &RedoSender,
        current_scn: Scn,
    ) -> Result<usize> {
        let mut total = 0;
        loop {
            let records = buffer.drain(self.batch);
            if records.is_empty() {
                break;
            }
            total += records.len();
            self.send_data(sender, records)?;
        }
        if total == 0 && current_scn > Scn::ZERO {
            self.send_heartbeat(buffer, sender, current_scn)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{RedoThreadId, ScnService};

    fn hb(scn: u64) -> RedoRecord {
        RedoRecord { thread: RedoThreadId(1), scn: Scn(scn), payload: RedoPayload::Heartbeat }
    }

    #[test]
    fn zero_latency_delivers_immediately() {
        let (tx, mut rx) = redo_link(Duration::ZERO);
        tx.send(vec![hb(1), hb(2)]).unwrap();
        assert_eq!(rx.drain_ready().unwrap().len(), 2);
        assert!(rx.try_recv().unwrap().is_none());
    }

    #[test]
    fn latency_delays_delivery() {
        // Virtual time: no wall-clock sleeping, no flake.
        let clock = Clock::manual();
        let (tx, mut rx) = redo_link_with_clock(Duration::from_millis(30), clock.clone());
        tx.send(vec![hb(1)]).unwrap();
        assert!(rx.try_recv().unwrap().is_none(), "not deliverable yet");
        clock.advance(Duration::from_millis(29));
        assert!(rx.try_recv().unwrap().is_none(), "still in flight");
        clock.advance(Duration::from_millis(1));
        assert_eq!(rx.try_recv().unwrap().unwrap().len(), 1);
    }

    #[test]
    fn sender_wakes_receiver_token() {
        let (tx, _rx) = redo_link(Duration::ZERO);
        let token = WakeToken::new();
        tx.set_waker(token.clone());
        tx.send(vec![hb(1)]).unwrap();
        assert!(token.park(Duration::from_secs(5)), "send latched a wake");
    }

    #[test]
    fn ordering_preserved_across_batches() {
        let (tx, mut rx) = redo_link(Duration::ZERO);
        tx.send(vec![hb(1)]).unwrap();
        tx.send(vec![hb(2)]).unwrap();
        let got = rx.drain_ready().unwrap();
        assert_eq!(got.iter().map(|r| r.scn.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn closed_link_errors() {
        let (tx, rx) = redo_link(Duration::ZERO);
        drop(rx);
        assert!(tx.send(vec![hb(1)]).is_err());
    }

    #[test]
    fn shipper_heartbeats_idle_buffer() {
        let scns = ScnService::new();
        scns.next(); // advance database time
        let buf = LogBuffer::new(RedoThreadId(1));
        let (tx, mut rx) = redo_link(Duration::ZERO);
        let shipper = Shipper::new(8);
        let shipped = shipper.ship_once(&buf, &tx, scns.current()).unwrap();
        assert_eq!(shipped, 0);
        let got = rx.drain_ready().unwrap();
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0].payload, RedoPayload::Heartbeat));
        assert_eq!(got[0].scn, Scn(1));
    }

    #[test]
    fn shipper_drains_buffer() {
        let scns = ScnService::new();
        let buf = LogBuffer::new(RedoThreadId(1));
        for _ in 0..20 {
            buf.log_with(&scns, |_| RedoPayload::Heartbeat);
        }
        let (tx, mut rx) = redo_link(Duration::ZERO);
        let shipped = Shipper::new(8).ship_all(&buf, &tx, scns.current()).unwrap();
        assert_eq!(shipped, 20);
        assert_eq!(rx.drain_ready().unwrap().len(), 20);
        assert_eq!(buf.pending(), 0);
    }
}
