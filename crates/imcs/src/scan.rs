//! The In-Memory Scan Engine.
//!
//! Serves a filtered scan at a snapshot SCN by combining three sources
//! (paper §II.B): (1) valid rows straight from encoded IMCUs — after
//! storage-index pruning, (2) stale/new rows fetched from the row-store via
//! Consistent Read (SMU reconciliation), and (3) row-store block scans for
//! blocks no unit covers (the insert frontier beyond the edge IMCU).

use std::collections::HashSet;

use imadg_common::{ObjectId, Result, Scn};
use imadg_storage::{Row, Store};

use std::sync::Arc;

use crate::expression::Expr;
use crate::imcs_store::{ImcsStore, ObjectImcs};
use crate::predicate::{CmpOp, Filter, Predicate};

/// Where each result row came from (experiment instrumentation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Rows served from encoded IMCU data.
    pub imcu_rows: usize,
    /// Rows served via row-store fallback (SMU-invalid, post-snapshot
    /// inserts, pending or coarse-invalidated units).
    pub fallback_rows: usize,
    /// Rows served from uncovered blocks.
    pub uncovered_rows: usize,
    /// Units skipped by the min/max storage index.
    pub pruned_units: usize,
    /// Units whose columns were scanned.
    pub scanned_units: usize,
    /// Units bypassed entirely (pending / all-invalid).
    pub bypassed_units: usize,
}

impl ScanStats {
    /// Total result rows.
    pub fn total(&self) -> usize {
        self.imcu_rows + self.fallback_rows + self.uncovered_rows
    }
}

/// A completed scan.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Matching row images.
    pub rows: Vec<Row>,
    /// Provenance counters.
    pub stats: ScanStats,
}

/// Run a filtered scan of `object` at `snapshot` through the column store,
/// falling back to the row-store where the IMCS is stale or uncovered.
///
/// Returns `Ok(None)` when the object has no column-store presence at all
/// on this instance — the caller should run a plain row-store scan.
pub fn scan(
    imcs: &ImcsStore,
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    snapshot: Scn,
) -> Result<Option<ScanResult>> {
    match imcs.object(object) {
        Some(obj) => scan_entries(&[obj], store, object, filter, snapshot).map(Some),
        None => Ok(None),
    }
}

/// Cluster-wide scan over several instances' column stores (RAC standby:
/// IMCUs are distributed by home location, so a query fans out across every
/// instance's units — modelling Oracle's cross-instance parallel execution).
pub fn scan_cluster(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    snapshot: Scn,
) -> Result<Option<ScanResult>> {
    let entries: Vec<Arc<ObjectImcs>> = stores.iter().filter_map(|s| s.object(object)).collect();
    if entries.is_empty() {
        return Ok(None);
    }
    scan_entries(&entries, store, object, filter, snapshot).map(Some)
}

fn scan_entries(
    entries: &[Arc<ObjectImcs>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    snapshot: Scn,
) -> Result<ScanResult> {
    let mut result = ScanResult::default();
    let mut covered: HashSet<imadg_common::Dba> = HashSet::new();

    for handle in entries.iter().flat_map(|e| e.handles()) {
        let (imcu, smu) = handle.pair();
        covered.extend(imcu.dbas.iter().copied());
        let view = smu.read();

        if imcu.is_pending() || view.all_invalid() || snapshot < imcu.snapshot {
            // No usable columnar data (the unit may also be frozen at a
            // population SCN *after* the scan snapshot, and the SMU only
            // records post-population changes): serve the whole range from
            // the row-store at the scan snapshot.
            result.stats.bypassed_units += 1;
            store.scan_blocks(&imcu.dbas, snapshot, |_, row| {
                if filter.eval_row(row) {
                    result.rows.push(row.clone());
                    result.stats.fallback_rows += 1;
                }
            })?;
            continue;
        }

        // Columnar path: drive the leading predicate through the encoded
        // column, verify the rest on materialized rows.
        let candidates: Vec<u32> = match filter.split_first() {
            Some((head, _)) if !imcu.storage_index.may_match(head) => {
                result.stats.pruned_units += 1;
                Vec::new()
            }
            Some((head, _)) => {
                result.stats.scanned_units += 1;
                imcu.scan(head)
            }
            None => {
                result.stats.scanned_units += 1;
                imcu.all_rows().collect()
            }
        };
        let rest: &[crate::predicate::Predicate] = match filter.split_first() {
            Some((_, rest)) => rest,
            None => &[],
        };
        for rn in candidates {
            let loc = imcu.loc(rn);
            if view.is_invalid(loc) {
                continue; // served by the fallback pass below
            }
            let row = imcu.materialize(rn);
            if rest.iter().all(|p| p.eval_row(&row)) {
                result.rows.push(row);
                result.stats.imcu_rows += 1;
            }
        }

        // SMU reconciliation: every stale or newly-inserted location must
        // be re-read from the row-store and re-filtered — its current value
        // may match even though (or although) the frozen one did not.
        // Batched by block: one latch per block, not per row. The SMU latch
        // is released before the row-store fetches.
        let mut fallback: Vec<imadg_storage::RowLoc> = Vec::with_capacity(view.fallback_count());
        view.collect_fallback(&mut fallback);
        drop(view);
        store.fetch_rows_batched(&mut fallback, snapshot, |_, row| {
            if filter.eval_row(row) {
                result.rows.push(row.clone());
                result.stats.fallback_rows += 1;
            }
        })?;
    }

    // Blocks beyond any unit's coverage (fresh inserts past the edge IMCU).
    let uncovered: Vec<_> =
        store.block_dbas(object)?.into_iter().filter(|d| !covered.contains(d)).collect();
    if !uncovered.is_empty() {
        store.scan_blocks(&uncovered, snapshot, |_, row| {
            if filter.eval_row(row) {
                result.rows.push(row.clone());
                result.stats.uncovered_rows += 1;
            }
        })?;
    }

    Ok(result)
}

/// A predicate over a registered in-memory expression (paper §V):
/// `<expr> <op> <literal>`, filtered through the precomputed virtual
/// column when a unit materialized it, or by evaluating the expression
/// over row images otherwise.
#[derive(Debug, Clone)]
pub struct ExprPredicate {
    /// The registered expression's name.
    pub name: String,
    /// The expression (for row-image fallback evaluation).
    pub expr: std::sync::Arc<Expr>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: imadg_storage::Value,
}

impl ExprPredicate {
    /// Evaluate against a row image.
    pub fn eval_row(&self, row: &Row) -> bool {
        let v = self.expr.eval(row);
        match (&v, &self.value) {
            (imadg_storage::Value::Int(a), imadg_storage::Value::Int(b)) => {
                self.op.matches(a.cmp(b))
            }
            (imadg_storage::Value::Str(a), imadg_storage::Value::Str(b)) => {
                self.op.matches(a.as_ref().cmp(b.as_ref()))
            }
            _ => false,
        }
    }
}

/// Scan `object` filtered by an in-memory expression predicate.
///
/// Units that materialized the expression's virtual column are filtered in
/// code space (with storage-index pruning on the virtual column); stale
/// rows, pre-registration units, and uncovered blocks evaluate the
/// expression per row image — correctness never depends on the virtual
/// column being present.
pub fn scan_expression(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    pred: &ExprPredicate,
    snapshot: Scn,
) -> Result<Option<ScanResult>> {
    let entries: Vec<Arc<ObjectImcs>> = stores.iter().filter_map(|s| s.object(object)).collect();
    if entries.is_empty() {
        return Ok(None);
    }
    let mut result = ScanResult::default();
    let mut covered: HashSet<imadg_common::Dba> = HashSet::new();

    for handle in entries.iter().flat_map(|e| e.handles()) {
        let (imcu, smu) = handle.pair();
        covered.extend(imcu.dbas.iter().copied());
        let view = smu.read();

        if imcu.is_pending() || view.all_invalid() || snapshot < imcu.snapshot {
            result.stats.bypassed_units += 1;
            store.scan_blocks(&imcu.dbas, snapshot, |_, row| {
                if pred.eval_row(row) {
                    result.rows.push(row.clone());
                    result.stats.fallback_rows += 1;
                }
            })?;
            continue;
        }

        let candidates: Vec<u32> = match imcu.virtual_ordinal(&pred.name) {
            Some(vord) => {
                // Fast path: the expression was materialized at population.
                let vpred = Predicate { ordinal: vord, op: pred.op, value: pred.value.clone() };
                if !imcu.storage_index.may_match(&vpred) {
                    result.stats.pruned_units += 1;
                    Vec::new()
                } else {
                    result.stats.scanned_units += 1;
                    imcu.scan(&vpred)
                }
            }
            None => {
                // Unit predates the expression registration: evaluate over
                // materialized rows (correct, just not accelerated).
                result.stats.scanned_units += 1;
                imcu.all_rows().filter(|&rn| pred.eval_row(&imcu.materialize(rn))).collect()
            }
        };
        for rn in candidates {
            let loc = imcu.loc(rn);
            if view.is_invalid(loc) {
                continue;
            }
            result.rows.push(imcu.materialize(rn));
            result.stats.imcu_rows += 1;
        }

        let mut fallback: Vec<imadg_storage::RowLoc> = Vec::with_capacity(view.fallback_count());
        view.collect_fallback(&mut fallback);
        drop(view);
        store.fetch_rows_batched(&mut fallback, snapshot, |_, row| {
            if pred.eval_row(row) {
                result.rows.push(row.clone());
                result.stats.fallback_rows += 1;
            }
        })?;
    }

    let uncovered: Vec<_> =
        store.block_dbas(object)?.into_iter().filter(|d| !covered.contains(d)).collect();
    if !uncovered.is_empty() {
        store.scan_blocks(&uncovered, snapshot, |_, row| {
            if pred.eval_row(row) {
                result.rows.push(row.clone());
                result.stats.uncovered_rows += 1;
            }
        })?;
    }
    Ok(Some(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{PopulationEngine, SnapshotSource};
    use crate::predicate::Predicate;
    use imadg_common::{ImcsConfig, RedoThreadId, ScnService, TenantId};
    use imadg_redo::LogBuffer;
    use imadg_storage::{ColumnType, DbaAllocator, Schema, TableSpec, Value};
    use imadg_txn::{InMemoryRegistry, LockTable, TxnIdService, TxnManager};
    use std::sync::Arc;

    const OBJ: ObjectId = ObjectId(1);

    struct Fixture {
        txm: TxnManager,
        store: Arc<Store>,
        scns: Arc<ScnService>,
        engine: PopulationEngine,
    }

    fn fixture() -> Fixture {
        let store = Arc::new(Store::new());
        let scns = Arc::new(ScnService::new());
        let txm = TxnManager::new(
            store.clone(),
            scns.clone(),
            Arc::new(LogBuffer::new(RedoThreadId(1))),
            Arc::new(TxnIdService::new()),
            Arc::new(LockTable::new()),
            Arc::new(InMemoryRegistry::new()),
            Arc::new(DbaAllocator::default()),
        );
        txm.create_table(TableSpec {
            id: OBJ,
            name: "t".into(),
            tenant: TenantId::DEFAULT,
            schema: Schema::of(&[
                ("id", ColumnType::Int),
                ("n1", ColumnType::Int),
                ("c1", ColumnType::Varchar),
            ]),
            key_ordinal: 0,
            rows_per_block: 8,
        })
        .unwrap();
        let engine = PopulationEngine::new(
            store.clone(),
            Arc::new(ImcsStore::new()),
            SnapshotSource::Primary(scns.clone()),
            ImcsConfig { imcu_max_rows: 16, repopulate_min_scn_gap: 0, ..Default::default() },
        )
        .unwrap();
        engine.enable(OBJ);
        Fixture { txm, store, scns, engine }
    }

    fn seed(f: &Fixture, from: i64, to: i64) {
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        for k in from..to {
            f.txm
                .insert(
                    &mut tx,
                    OBJ,
                    vec![Value::Int(k), Value::Int(k % 10), Value::str(format!("c{}", k % 5))],
                )
                .unwrap();
        }
        f.txm.commit(tx);
    }

    fn schema(f: &Fixture) -> Schema {
        f.store.table(OBJ).unwrap().schema.read().clone()
    }

    #[test]
    fn pure_imcu_scan() {
        let f = fixture();
        seed(&f, 0, 100);
        f.engine.run_once().unwrap();
        let filt = Filter::of(Predicate::eq(&schema(&f), "n1", Value::Int(3)).unwrap());
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt, f.scns.current()).unwrap().unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.stats.imcu_rows, 10);
        assert_eq!(r.stats.fallback_rows, 0);
        assert_eq!(r.stats.uncovered_rows, 0);
        for row in &r.rows {
            assert_eq!(row[1], Value::Int(3));
        }
    }

    #[test]
    fn unpopulated_object_returns_none() {
        let f = fixture();
        seed(&f, 0, 10);
        let r = scan(f.engine.imcs(), &f.store, OBJ, &Filter::all(), f.scns.current()).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn invalid_rows_served_from_row_store() {
        let f = fixture();
        seed(&f, 0, 50);
        f.engine.run_once().unwrap();
        // Update key 7's n1 from 7 to 42 and flush the invalidation by hand.
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        let loc = f.txm.update_column_by_key(&mut tx, OBJ, 7, "n1", Value::Int(42)).unwrap();
        let cscn = f.txm.commit(tx);
        assert!(f.engine.imcs().invalidate(OBJ, loc, cscn));

        let sc = schema(&f);
        // The stale value no longer matches…
        let filt7 = Filter::of(Predicate::eq(&sc, "n1", Value::Int(7)).unwrap());
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt7, f.scns.current()).unwrap().unwrap();
        let keys: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        assert!(!keys.contains(&7), "updated row must not match its old value");
        assert_eq!(r.rows.len(), 4, "17, 27, 37, 47 still match");
        // …and the new value matches via fallback.
        let filt42 = Filter::of(Predicate::eq(&sc, "n1", Value::Int(42)).unwrap());
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt42, f.scns.current()).unwrap().unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.stats.fallback_rows, 1);
        assert_eq!(r.rows[0][0], Value::Int(7));
    }

    #[test]
    fn snapshot_respects_invalidated_rows_history() {
        let f = fixture();
        seed(&f, 0, 20);
        f.engine.run_once().unwrap();
        let before = f.scns.current();
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        let loc = f.txm.update_column_by_key(&mut tx, OBJ, 3, "n1", Value::Int(99)).unwrap();
        let cscn = f.txm.commit(tx);
        f.engine.imcs().invalidate(OBJ, loc, cscn);
        // Scanning at the *old* snapshot: fallback fetch resolves the old
        // version through CR, so key 3 still matches n1=3.
        let filt = Filter::of(Predicate::eq(&schema(&f), "n1", Value::Int(3)).unwrap());
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt, before).unwrap().unwrap();
        let keys: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        assert!(keys.contains(&3), "CR at the old snapshot sees the old value");
    }

    #[test]
    fn uncovered_blocks_scanned_from_row_store() {
        let f = fixture();
        seed(&f, 0, 32);
        f.engine.run_once().unwrap();
        seed(&f, 100, 110); // new blocks, not yet populated
        let filt = Filter::all();
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt, f.scns.current()).unwrap().unwrap();
        assert_eq!(r.rows.len(), 42);
        assert!(r.stats.uncovered_rows > 0);
        // There can be edge overlap: the last covered block had free slots.
        assert_eq!(r.stats.total(), 42);
    }

    #[test]
    fn deleted_rows_disappear() {
        let f = fixture();
        seed(&f, 0, 10);
        f.engine.run_once().unwrap();
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        let loc = f.txm.delete_by_key(&mut tx, OBJ, 4).unwrap();
        let cscn = f.txm.commit(tx);
        f.engine.imcs().invalidate(OBJ, loc, cscn);
        let r = scan(f.engine.imcs(), &f.store, OBJ, &Filter::all(), f.scns.current())
            .unwrap()
            .unwrap();
        assert_eq!(r.rows.len(), 9);
        assert!(r.rows.iter().all(|row| row[0] != Value::Int(4)));
    }

    #[test]
    fn storage_index_prunes_but_fallback_still_checked() {
        let f = fixture();
        seed(&f, 0, 64); // n1 ∈ [0,9]
        f.engine.run_once().unwrap();
        // Update key 5 to an out-of-range value and invalidate.
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        let loc = f.txm.update_column_by_key(&mut tx, OBJ, 5, "n1", Value::Int(1000)).unwrap();
        let cscn = f.txm.commit(tx);
        f.engine.imcs().invalidate(OBJ, loc, cscn);
        let filt = Filter::of(Predicate::eq(&schema(&f), "n1", Value::Int(1000)).unwrap());
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt, f.scns.current()).unwrap().unwrap();
        assert!(r.stats.pruned_units >= 1, "min/max excludes 1000 from frozen units");
        assert_eq!(r.rows.len(), 1, "fallback row found despite pruning");
        assert_eq!(r.rows[0][0], Value::Int(5));
    }

    #[test]
    fn coarse_invalidated_units_bypass_to_row_store() {
        let f = fixture();
        seed(&f, 0, 30);
        f.engine.run_once().unwrap();
        f.engine.imcs().mark_tenant_invalid(TenantId::DEFAULT);
        let r = scan(f.engine.imcs(), &f.store, OBJ, &Filter::all(), f.scns.current())
            .unwrap()
            .unwrap();
        assert_eq!(r.rows.len(), 30);
        assert_eq!(r.stats.imcu_rows, 0);
        assert!(r.stats.bypassed_units > 0);
    }

    #[test]
    fn multi_term_filter() {
        let f = fixture();
        seed(&f, 0, 100);
        f.engine.run_once().unwrap();
        let sc = schema(&f);
        let filt = Filter {
            terms: vec![
                Predicate::eq(&sc, "n1", Value::Int(3)).unwrap(),
                Predicate::eq(&sc, "c1", Value::str("c3")).unwrap(),
            ],
        };
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt, f.scns.current()).unwrap().unwrap();
        // k % 10 == 3 and k % 5 == 3 → k ≡ 3 (mod 10) ∧ k ≡ 3 (mod 5) → k % 10 = 3.
        // c1 = c{k%5}; k%10==3 → k%5==3 → matches. So all 10 rows match.
        assert_eq!(r.rows.len(), 10);
    }
}
