//! The In-Memory Scan Engine.
//!
//! Serves a filtered scan at a snapshot SCN by combining three sources
//! (paper §II.B): (1) valid rows straight from encoded IMCUs — after
//! storage-index pruning, (2) stale/new rows fetched from the row-store via
//! Consistent Read (SMU reconciliation), and (3) row-store block scans for
//! blocks no unit covers (the insert frontier beyond the edge IMCU).
//!
//! Predicates evaluate in *column space*: every conjunct runs through its
//! encoding's branchless kernel into a chunked selection bitmap (64 rows
//! per word), SMU validity converts to the same mask form, and the bitmaps
//! AND together — only final survivors materialize row images. Units are
//! independent scan tasks, so the whole walk fans out across a query-scoped
//! worker pool ([`crate::parallel`]) and merges per-unit partials in unit
//! order: results are bit-identical at every parallel degree. The old
//! row-at-a-time engine survives in [`crate::scalar`] as the parity oracle
//! and bench baseline.

use std::sync::Arc;
use std::time::Instant;

use imadg_common::{Dba, ObjectId, QueryProfile, Result, Scn, UnitTiming};
use imadg_storage::{Row, Store};

use crate::bitmap::SelBitmap;
use crate::coldstore::{ColdMeta, ColdUnit, ColdUnitFile};
use crate::expression::Expr;
use crate::imcs_store::{ImcsStore, ImcuHandle, ObjectImcs};
use crate::imcu::Imcu;
use crate::parallel::run_indexed;
use crate::predicate::{CmpOp, Filter, Predicate};
use crate::smu::SmuReadGuard;

/// Where each result row came from (experiment instrumentation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Rows served from encoded IMCU data.
    pub imcu_rows: usize,
    /// Rows served via row-store fallback (SMU-invalid, post-snapshot
    /// inserts, pending or coarse-invalidated units).
    pub fallback_rows: usize,
    /// Rows served from uncovered blocks.
    pub uncovered_rows: usize,
    /// Units skipped by the min/max storage index (any conjunct excluded).
    pub pruned_units: usize,
    /// Units whose columns were scanned.
    pub scanned_units: usize,
    /// Units bypassed entirely (pending / all-invalid).
    pub bypassed_units: usize,
    /// Cold units excluded by footer min/max alone — zero file I/O.
    pub cold_pruned_units: usize,
    /// Cold units whose file was opened and predicate-filtered on disk.
    pub cold_read_units: usize,
    /// Cold files that failed to open or decode; the unit degraded to the
    /// row-store bypass (torn write, truncated footer, bit rot).
    pub cold_read_errors: usize,
    /// Per-unit scan tasks issued to the worker pool. A function of the
    /// unit count only — identical at every parallel degree.
    pub parallel_tasks: usize,
}

impl ScanStats {
    /// Total result rows.
    pub fn total(&self) -> usize {
        self.imcu_rows + self.fallback_rows + self.uncovered_rows
    }

    /// Fold another unit's counters in (parallel per-unit reduce).
    pub fn absorb(&mut self, other: &ScanStats) {
        self.imcu_rows += other.imcu_rows;
        self.fallback_rows += other.fallback_rows;
        self.uncovered_rows += other.uncovered_rows;
        self.pruned_units += other.pruned_units;
        self.scanned_units += other.scanned_units;
        self.bypassed_units += other.bypassed_units;
        self.cold_pruned_units += other.cold_pruned_units;
        self.cold_read_units += other.cold_read_units;
        self.cold_read_errors += other.cold_read_errors;
        self.parallel_tasks += other.parallel_tasks;
    }
}

/// A completed scan.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Matching row images.
    pub rows: Vec<Row>,
    /// Provenance counters.
    pub stats: ScanStats,
    /// Phase timings, populated only on the `*_profiled` entry points.
    pub profile: Option<QueryProfile>,
}

/// Microseconds elapsed since `t` (profiler granularity).
fn micros(t: Instant) -> u64 {
    t.elapsed().as_micros() as u64
}

/// A predicate the unified unit-walk driver can evaluate both in column
/// space (selection bitmap per unit) and against row images (row-store
/// fallback). [`Filter`] and [`ExprPredicate`] are the two shapes.
trait RowPredicate: Sync {
    /// Row-image evaluation (fallback, bypass, and uncovered passes).
    fn matches_row(&self, row: &Row) -> bool;

    /// Column-space evaluation over one unit. `None` means the unit's
    /// min/max storage index excludes it entirely (prune).
    fn unit_bitmap(&self, imcu: &Imcu) -> Option<SelBitmap>;

    /// Does the cold footer's min/max exclude every serialized row? A
    /// `true` answer costs zero file I/O — the whole decision runs off
    /// metadata held in memory since eviction.
    fn cold_prunes(&self, meta: &ColdMeta) -> bool;

    /// Column-space evaluation over an opened cold file, decoding only the
    /// columns the predicate touches. Unlike [`RowPredicate::unit_bitmap`],
    /// `None` here means *corruption* (a column entry failed its CRC) —
    /// pruning was already decided by [`RowPredicate::cold_prunes`].
    fn cold_bitmap(&self, file: &ColdUnitFile) -> Option<SelBitmap>;
}

impl RowPredicate for Filter {
    fn matches_row(&self, row: &Row) -> bool {
        self.eval_row(row)
    }

    fn unit_bitmap(&self, imcu: &Imcu) -> Option<SelBitmap> {
        imcu.filter_bitmap(self)
    }

    fn cold_prunes(&self, meta: &ColdMeta) -> bool {
        meta.prunes(self)
    }

    fn cold_bitmap(&self, file: &ColdUnitFile) -> Option<SelBitmap> {
        file.filter_bitmap(self)
    }
}

/// One unit's contribution to a scan, merged by the driver in unit order.
struct UnitPartial {
    rows: Vec<Row>,
    stats: ScanStats,
    covered: Vec<Dba>,
    timing: UnitTiming,
}

/// Scan one unit: bypass to the row-store when the columnar data is
/// unusable, otherwise bitmap-evaluate the predicate, AND the SMU validity
/// mask, materialize survivors, and reconcile stale locations.
///
/// Phase timings are always collected (an `Instant` read per phase is
/// noise next to the scan itself); the driver discards them unless the
/// query asked for a profile.
fn scan_unit<P: RowPredicate>(
    handle: &ImcuHandle,
    store: &Store,
    pred: &P,
    snapshot: Scn,
    unit: usize,
) -> Result<UnitPartial> {
    let started = Instant::now();
    handle.note_scan();
    let (imcu, smu) = handle.pair();
    let mut partial = UnitPartial {
        rows: Vec::new(),
        stats: ScanStats::default(),
        covered: imcu.dbas.clone(),
        timing: UnitTiming { unit, ..Default::default() },
    };
    let view = smu.read();

    // Cold tier: the unit was evicted (pending placeholder + attached cold
    // state). Serve it from the columnar file — footer pruning first, then
    // predicate pushdown during the page read. Any failure (torn file,
    // CRC mismatch) falls through to the pending bypass below, which is
    // the plain row-store scan: degraded, never wrong.
    if imcu.is_pending() && !view.all_invalid() && snapshot >= imcu.snapshot {
        if let Some(cold) = handle.cold() {
            if cold.meta.snapshot == imcu.snapshot
                && scan_unit_cold(&cold, store, pred, snapshot, &view, &mut partial)?
            {
                drop(view);
                partial.timing.total_us = micros(started);
                return Ok(partial);
            }
            partial.stats.cold_read_errors += 1;
        }
    }

    if imcu.is_pending() || view.all_invalid() || snapshot < imcu.snapshot {
        // No usable columnar data (the unit may also be frozen at a
        // population SCN *after* the scan snapshot, and the SMU only
        // records post-population changes): serve the whole range from
        // the row-store at the scan snapshot.
        drop(view);
        partial.stats.bypassed_units = 1;
        partial.timing.bypassed = true;
        let t = Instant::now();
        store.scan_blocks(&imcu.dbas, snapshot, |_, row| {
            if pred.matches_row(row) {
                partial.rows.push(row.clone());
                partial.stats.fallback_rows += 1;
            }
        })?;
        partial.timing.fallback_us = micros(t);
        partial.timing.total_us = micros(started);
        return Ok(partial);
    }

    // Columnar path: evaluate every conjunct in column space, AND the
    // validity mask, materialize only the survivors.
    let t = Instant::now();
    match pred.unit_bitmap(&imcu) {
        None => {
            partial.stats.pruned_units = 1;
            partial.timing.pruned = true;
            partial.timing.kernel_us = micros(t);
        }
        Some(mut sel) => {
            partial.stats.scanned_units = 1;
            partial.timing.kernel_us = micros(t);
            let t = Instant::now();
            if let Some(mask) = view.validity_mask(imcu.rows(), |l| imcu.rownum(l)) {
                sel.and_assign(&mask);
            }
            partial.timing.merge_us = micros(t);
            let t = Instant::now();
            imcu.materialize_matches(&sel, &mut partial.rows);
            partial.stats.imcu_rows = partial.rows.len();
            partial.timing.kernel_us += micros(t);
        }
    }

    // SMU reconciliation: every stale or newly-inserted location must be
    // re-read from the row-store and re-filtered — its current value may
    // match even though (or although) the frozen one did not. Batched by
    // block: one latch per block, not per row. The SMU latch is released
    // before the row-store fetches.
    let t = Instant::now();
    let mut fallback: Vec<imadg_storage::RowLoc> = Vec::with_capacity(view.fallback_count());
    view.collect_fallback(&mut fallback);
    drop(view);
    partial.timing.merge_us += micros(t);
    let t = Instant::now();
    store.fetch_rows_batched(&mut fallback, snapshot, |_, row| {
        if pred.matches_row(row) {
            partial.rows.push(row.clone());
            partial.stats.fallback_rows += 1;
        }
    })?;
    partial.timing.fallback_us += micros(t);
    partial.timing.total_us = micros(started);
    Ok(partial)
}

/// Scan one cold unit. Returns `Ok(false)` — with `partial` untouched — on
/// any open/decode failure so the caller degrades to the row-store bypass.
///
/// The pruning decision runs off the in-memory footer before any I/O; only
/// non-pruned units open the file, and only predicate + surviving base
/// columns are ever decoded. The SMU journal is honored exactly like the
/// hot path: serialized rows with journaled DML are masked out of the file
/// results and re-read from the row store at the scan snapshot.
fn scan_unit_cold<P: RowPredicate>(
    cold: &ColdUnit,
    store: &Store,
    pred: &P,
    snapshot: Scn,
    view: &SmuReadGuard<'_>,
    partial: &mut UnitPartial,
) -> Result<bool> {
    let t = Instant::now();
    if pred.cold_prunes(&cold.meta) {
        // Footer min/max excludes every serialized row: zero file I/O.
        // Journaled rows may still match their *current* version — the
        // fallback pass below re-reads them from the row store.
        partial.stats.pruned_units = 1;
        partial.stats.cold_pruned_units = 1;
        partial.timing.pruned = true;
        partial.timing.cold_pruned = true;
        partial.timing.kernel_us = micros(t);
    } else {
        let Some(file) = ColdUnitFile::open(&cold.path) else { return Ok(false) };
        let Some(mut sel) = pred.cold_bitmap(&file) else { return Ok(false) };
        // Mask out serialized rows with journaled DML. The placeholder
        // holds no rownums, so the loc → rownum map comes from the file's
        // own row-location entry (decoded only when the journal is
        // non-empty).
        if view.fallback_count() > 0 {
            let Some(index) = file.loc_index() else { return Ok(false) };
            if let Some(mask) = view.validity_mask(file.meta.rows, |l| index.get(&l).copied()) {
                sel.and_assign(&mask);
            }
        }
        // Project only surviving rows: decode each base column once and
        // gather column-at-a-time, like the hot materializer. All decodes
        // complete before `partial` is touched, so a corrupt column still
        // degrades to a clean bypass.
        let rns: Vec<u32> = sel.iter_ones().collect();
        let base = cold.meta.base_arity.min(cold.meta.column_count());
        let mut scratch: Vec<Vec<imadg_storage::Value>> = Vec::with_capacity(base);
        if !rns.is_empty() {
            for ord in 0..base {
                let Some(col) = file.decode_column(ord) else { return Ok(false) };
                let mut values = Vec::new();
                col.gather(&rns, &mut values);
                scratch.push(values);
            }
        }
        cold.note_read();
        partial.stats.scanned_units = 1;
        partial.stats.cold_read_units = 1;
        partial.timing.cold_read = true;
        partial.rows.reserve(rns.len());
        for i in 0..rns.len() {
            partial.rows.push(Row::from_iter_exact(
                scratch
                    .iter_mut()
                    .map(|col| std::mem::replace(&mut col[i], imadg_storage::Value::Null)),
            ));
        }
        partial.stats.imcu_rows = rns.len();
        partial.timing.kernel_us = micros(t);
    }

    // SMU reconciliation — identical to the hot path: every journaled
    // location re-reads from the row store at the scan snapshot.
    let t = Instant::now();
    let mut fallback: Vec<imadg_storage::RowLoc> = Vec::with_capacity(view.fallback_count());
    view.collect_fallback(&mut fallback);
    partial.timing.merge_us += micros(t);
    let t = Instant::now();
    store.fetch_rows_batched(&mut fallback, snapshot, |_, row| {
        if pred.matches_row(row) {
            partial.rows.push(row.clone());
            partial.stats.fallback_rows += 1;
        }
    })?;
    partial.timing.fallback_us += micros(t);
    Ok(true)
}

/// The unified unit-walk driver behind every scan entry point: fan the
/// per-unit tasks across `degree` workers, merge partials in unit order
/// (deterministic at any degree), then sweep the uncovered block frontier.
fn scan_units<P: RowPredicate>(
    entries: &[Arc<ObjectImcs>],
    store: &Store,
    object: ObjectId,
    pred: &P,
    snapshot: Scn,
    degree: usize,
    profile: bool,
) -> Result<ScanResult> {
    let handles: Vec<Arc<ImcuHandle>> = entries.iter().flat_map(|e| e.handles()).collect();
    let partials = run_indexed(degree, handles.len(), |i| {
        scan_unit(handles[i].as_ref(), store, pred, snapshot, i)
    });

    let mut result = ScanResult::default();
    let mut prof = profile.then(QueryProfile::default);
    let mut covered: Vec<Dba> = Vec::new();
    for partial in partials {
        let p = partial?;
        if let Some(prof) = prof.as_mut() {
            prof.absorb_task(p.timing);
        }
        result.stats.absorb(&p.stats);
        result.rows.extend(p.rows);
        covered.extend(p.covered);
    }
    result.stats.parallel_tasks = handles.len();

    // Blocks beyond any unit's coverage (fresh inserts past the edge
    // IMCU). Sorted-vec membership instead of a hash set: the DBA lists
    // are tiny and already nearly sorted, and `block_dbas` is a scan of
    // its own — binary search beats per-DBA hashing here.
    covered.sort_unstable();
    covered.dedup();
    let t = Instant::now();
    let uncovered: Vec<Dba> = store
        .block_dbas(object)?
        .into_iter()
        .filter(|d| covered.binary_search(d).is_err())
        .collect();
    if !uncovered.is_empty() {
        store.scan_blocks(&uncovered, snapshot, |_, row| {
            if pred.matches_row(row) {
                result.rows.push(row.clone());
                result.stats.uncovered_rows += 1;
            }
        })?;
    }
    if let Some(prof) = prof.as_mut() {
        prof.uncovered_us = micros(t);
        prof.parallel_degree = degree.max(1);
    }
    result.profile = prof;

    Ok(result)
}

/// Run a filtered scan of `object` at `snapshot` through the column store,
/// falling back to the row-store where the IMCS is stale or uncovered.
///
/// Returns `Ok(None)` when the object has no column-store presence at all
/// on this instance — the caller should run a plain row-store scan.
pub fn scan(
    imcs: &ImcsStore,
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    snapshot: Scn,
) -> Result<Option<ScanResult>> {
    scan_parallel(imcs, store, object, filter, snapshot, 1)
}

/// [`scan`] with an explicit parallel degree (`<= 1` = serial).
pub fn scan_parallel(
    imcs: &ImcsStore,
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    snapshot: Scn,
    degree: usize,
) -> Result<Option<ScanResult>> {
    match imcs.object(object) {
        Some(obj) => scan_units(&[obj], store, object, filter, snapshot, degree, false).map(Some),
        None => Ok(None),
    }
}

/// Cluster-wide scan over several instances' column stores (RAC standby:
/// IMCUs are distributed by home location, so a query fans out across every
/// instance's units — modelling Oracle's cross-instance parallel execution).
pub fn scan_cluster(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    snapshot: Scn,
) -> Result<Option<ScanResult>> {
    scan_cluster_parallel(stores, store, object, filter, snapshot, 1)
}

/// [`scan_cluster`] with an explicit parallel degree (`<= 1` = serial).
pub fn scan_cluster_parallel(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    snapshot: Scn,
    degree: usize,
) -> Result<Option<ScanResult>> {
    let entries: Vec<Arc<ObjectImcs>> = stores.iter().filter_map(|s| s.object(object)).collect();
    if entries.is_empty() {
        return Ok(None);
    }
    scan_units(&entries, store, object, filter, snapshot, degree, false).map(Some)
}

/// [`scan_cluster_parallel`] with per-phase timing: the result's
/// `profile` carries the pruning / kernel / journal-merge / fallback /
/// uncovered split and one [`UnitTiming`] per parallel task.
pub fn scan_cluster_profiled(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    snapshot: Scn,
    degree: usize,
) -> Result<Option<ScanResult>> {
    let entries: Vec<Arc<ObjectImcs>> = stores.iter().filter_map(|s| s.object(object)).collect();
    if entries.is_empty() {
        return Ok(None);
    }
    scan_units(&entries, store, object, filter, snapshot, degree, true).map(Some)
}

/// A predicate over a registered in-memory expression (paper §V):
/// `<expr> <op> <literal>`, filtered through the precomputed virtual
/// column when a unit materialized it, or by evaluating the expression
/// over row images otherwise.
#[derive(Debug, Clone)]
pub struct ExprPredicate {
    /// The registered expression's name.
    pub name: String,
    /// The expression (for row-image fallback evaluation).
    pub expr: std::sync::Arc<Expr>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: imadg_storage::Value,
}

impl ExprPredicate {
    /// Evaluate against a row image.
    pub fn eval_row(&self, row: &Row) -> bool {
        let v = self.expr.eval(row);
        match (&v, &self.value) {
            (imadg_storage::Value::Int(a), imadg_storage::Value::Int(b)) => {
                self.op.matches(a.cmp(b))
            }
            (imadg_storage::Value::Str(a), imadg_storage::Value::Str(b)) => {
                self.op.matches(a.as_ref().cmp(b.as_ref()))
            }
            _ => false,
        }
    }
}

impl RowPredicate for ExprPredicate {
    fn matches_row(&self, row: &Row) -> bool {
        self.eval_row(row)
    }

    fn unit_bitmap(&self, imcu: &Imcu) -> Option<SelBitmap> {
        match imcu.virtual_ordinal(&self.name) {
            Some(vord) => {
                // Fast path: the expression was materialized at population —
                // filter the encoded virtual column like any base column.
                let vpred = Predicate { ordinal: vord, op: self.op, value: self.value.clone() };
                if !imcu.storage_index.may_match(&vpred) {
                    return None;
                }
                Some(imcu.pred_bitmap(&vpred))
            }
            None => {
                // Unit predates the expression registration: evaluate over
                // materialized rows (correct, just not accelerated).
                let mut sel = SelBitmap::zeroes(imcu.rows());
                for rn in imcu.all_rows() {
                    if self.eval_row(&imcu.materialize(rn)) {
                        sel.set(rn as usize);
                    }
                }
                Some(sel)
            }
        }
    }

    fn cold_prunes(&self, meta: &ColdMeta) -> bool {
        match meta.virtual_ordinal(&self.name) {
            Some(vord) => {
                let vpred = Predicate { ordinal: vord, op: self.op, value: self.value.clone() };
                !meta.summaries.may_match(&vpred)
            }
            // No materialized virtual column: footer min/max says nothing
            // about the expression's value range — cannot prune.
            None => false,
        }
    }

    fn cold_bitmap(&self, file: &ColdUnitFile) -> Option<SelBitmap> {
        match file.meta.virtual_ordinal(&self.name) {
            Some(vord) => {
                // The expression was materialized at population: decode
                // only its virtual column and filter it like a base column.
                let vpred = Predicate { ordinal: vord, op: self.op, value: self.value.clone() };
                let col = file.decode_column(vord)?;
                let mut sel = SelBitmap::zeroes(file.meta.rows);
                col.scan_bitmap(&vpred, &mut sel);
                Some(sel)
            }
            None => {
                // File predates the expression registration: decode every
                // base column and evaluate over row images (correct, just
                // not accelerated — mirrors the hot path's fallback).
                let imcu = file.into_imcu()?;
                let mut sel = SelBitmap::zeroes(imcu.rows());
                for rn in imcu.all_rows() {
                    if self.eval_row(&imcu.materialize(rn)) {
                        sel.set(rn as usize);
                    }
                }
                Some(sel)
            }
        }
    }
}

/// Scan `object` filtered by an in-memory expression predicate.
///
/// Units that materialized the expression's virtual column are filtered in
/// code space (with storage-index pruning on the virtual column); stale
/// rows, pre-registration units, and uncovered blocks evaluate the
/// expression per row image — correctness never depends on the virtual
/// column being present.
pub fn scan_expression(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    pred: &ExprPredicate,
    snapshot: Scn,
) -> Result<Option<ScanResult>> {
    scan_expression_parallel(stores, store, object, pred, snapshot, 1)
}

/// [`scan_expression`] with an explicit parallel degree (`<= 1` = serial).
pub fn scan_expression_parallel(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    pred: &ExprPredicate,
    snapshot: Scn,
    degree: usize,
) -> Result<Option<ScanResult>> {
    let entries: Vec<Arc<ObjectImcs>> = stores.iter().filter_map(|s| s.object(object)).collect();
    if entries.is_empty() {
        return Ok(None);
    }
    scan_units(&entries, store, object, pred, snapshot, degree, false).map(Some)
}

/// [`scan_expression_parallel`] with per-phase timing (see
/// [`scan_cluster_profiled`]).
pub fn scan_expression_profiled(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    pred: &ExprPredicate,
    snapshot: Scn,
    degree: usize,
) -> Result<Option<ScanResult>> {
    let entries: Vec<Arc<ObjectImcs>> = stores.iter().filter_map(|s| s.object(object)).collect();
    if entries.is_empty() {
        return Ok(None);
    }
    scan_units(&entries, store, object, pred, snapshot, degree, true).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{PopulationEngine, SnapshotSource};
    use crate::predicate::Predicate;
    use imadg_common::{ImcsConfig, RedoThreadId, ScnService, TenantId};
    use imadg_redo::LogBuffer;
    use imadg_storage::{ColumnType, DbaAllocator, Schema, TableSpec, Value};
    use imadg_txn::{InMemoryRegistry, LockTable, TxnIdService, TxnManager};
    use std::sync::Arc;

    const OBJ: ObjectId = ObjectId(1);

    struct Fixture {
        txm: TxnManager,
        store: Arc<Store>,
        scns: Arc<ScnService>,
        engine: PopulationEngine,
    }

    fn fixture() -> Fixture {
        let store = Arc::new(Store::new());
        let scns = Arc::new(ScnService::new());
        let txm = TxnManager::new(
            store.clone(),
            scns.clone(),
            Arc::new(LogBuffer::new(RedoThreadId(1))),
            Arc::new(TxnIdService::new()),
            Arc::new(LockTable::new()),
            Arc::new(InMemoryRegistry::new()),
            Arc::new(DbaAllocator::default()),
        );
        txm.create_table(TableSpec {
            id: OBJ,
            name: "t".into(),
            tenant: TenantId::DEFAULT,
            schema: Schema::of(&[
                ("id", ColumnType::Int),
                ("n1", ColumnType::Int),
                ("c1", ColumnType::Varchar),
            ]),
            key_ordinal: 0,
            rows_per_block: 8,
        })
        .unwrap();
        let engine = PopulationEngine::new(
            store.clone(),
            Arc::new(ImcsStore::new()),
            SnapshotSource::Primary(scns.clone()),
            ImcsConfig { imcu_max_rows: 16, repopulate_min_scn_gap: 0, ..Default::default() },
        )
        .unwrap();
        engine.enable(OBJ);
        Fixture { txm, store, scns, engine }
    }

    fn seed(f: &Fixture, from: i64, to: i64) {
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        for k in from..to {
            f.txm
                .insert(
                    &mut tx,
                    OBJ,
                    vec![Value::Int(k), Value::Int(k % 10), Value::str(format!("c{}", k % 5))],
                )
                .unwrap();
        }
        f.txm.commit(tx);
    }

    fn schema(f: &Fixture) -> Schema {
        f.store.table(OBJ).unwrap().schema.read().clone()
    }

    #[test]
    fn pure_imcu_scan() {
        let f = fixture();
        seed(&f, 0, 100);
        f.engine.run_once().unwrap();
        let filt = Filter::of(Predicate::eq(&schema(&f), "n1", Value::Int(3)).unwrap());
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt, f.scns.current()).unwrap().unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.stats.imcu_rows, 10);
        assert_eq!(r.stats.fallback_rows, 0);
        assert_eq!(r.stats.uncovered_rows, 0);
        assert!(r.stats.parallel_tasks >= 1);
        for row in &r.rows {
            assert_eq!(row[1], Value::Int(3));
        }
    }

    #[test]
    fn unpopulated_object_returns_none() {
        let f = fixture();
        seed(&f, 0, 10);
        let r = scan(f.engine.imcs(), &f.store, OBJ, &Filter::all(), f.scns.current()).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn invalid_rows_served_from_row_store() {
        let f = fixture();
        seed(&f, 0, 50);
        f.engine.run_once().unwrap();
        // Update key 7's n1 from 7 to 42 and flush the invalidation by hand.
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        let loc = f.txm.update_column_by_key(&mut tx, OBJ, 7, "n1", Value::Int(42)).unwrap();
        let cscn = f.txm.commit(tx);
        assert!(f.engine.imcs().invalidate(OBJ, loc, cscn));

        let sc = schema(&f);
        // The stale value no longer matches…
        let filt7 = Filter::of(Predicate::eq(&sc, "n1", Value::Int(7)).unwrap());
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt7, f.scns.current()).unwrap().unwrap();
        let keys: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        assert!(!keys.contains(&7), "updated row must not match its old value");
        assert_eq!(r.rows.len(), 4, "17, 27, 37, 47 still match");
        // …and the new value matches via fallback.
        let filt42 = Filter::of(Predicate::eq(&sc, "n1", Value::Int(42)).unwrap());
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt42, f.scns.current()).unwrap().unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.stats.fallback_rows, 1);
        assert_eq!(r.rows[0][0], Value::Int(7));
    }

    #[test]
    fn snapshot_respects_invalidated_rows_history() {
        let f = fixture();
        seed(&f, 0, 20);
        f.engine.run_once().unwrap();
        let before = f.scns.current();
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        let loc = f.txm.update_column_by_key(&mut tx, OBJ, 3, "n1", Value::Int(99)).unwrap();
        let cscn = f.txm.commit(tx);
        f.engine.imcs().invalidate(OBJ, loc, cscn);
        // Scanning at the *old* snapshot: fallback fetch resolves the old
        // version through CR, so key 3 still matches n1=3.
        let filt = Filter::of(Predicate::eq(&schema(&f), "n1", Value::Int(3)).unwrap());
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt, before).unwrap().unwrap();
        let keys: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        assert!(keys.contains(&3), "CR at the old snapshot sees the old value");
    }

    #[test]
    fn uncovered_blocks_scanned_from_row_store() {
        let f = fixture();
        seed(&f, 0, 32);
        f.engine.run_once().unwrap();
        seed(&f, 100, 110); // new blocks, not yet populated
        let filt = Filter::all();
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt, f.scns.current()).unwrap().unwrap();
        assert_eq!(r.rows.len(), 42);
        assert!(r.stats.uncovered_rows > 0);
        // There can be edge overlap: the last covered block had free slots.
        assert_eq!(r.stats.total(), 42);
    }

    #[test]
    fn deleted_rows_disappear() {
        let f = fixture();
        seed(&f, 0, 10);
        f.engine.run_once().unwrap();
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        let loc = f.txm.delete_by_key(&mut tx, OBJ, 4).unwrap();
        let cscn = f.txm.commit(tx);
        f.engine.imcs().invalidate(OBJ, loc, cscn);
        let r = scan(f.engine.imcs(), &f.store, OBJ, &Filter::all(), f.scns.current())
            .unwrap()
            .unwrap();
        assert_eq!(r.rows.len(), 9);
        assert!(r.rows.iter().all(|row| row[0] != Value::Int(4)));
    }

    #[test]
    fn storage_index_prunes_but_fallback_still_checked() {
        let f = fixture();
        seed(&f, 0, 64); // n1 ∈ [0,9]
        f.engine.run_once().unwrap();
        // Update key 5 to an out-of-range value and invalidate.
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        let loc = f.txm.update_column_by_key(&mut tx, OBJ, 5, "n1", Value::Int(1000)).unwrap();
        let cscn = f.txm.commit(tx);
        f.engine.imcs().invalidate(OBJ, loc, cscn);
        let filt = Filter::of(Predicate::eq(&schema(&f), "n1", Value::Int(1000)).unwrap());
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt, f.scns.current()).unwrap().unwrap();
        assert!(r.stats.pruned_units >= 1, "min/max excludes 1000 from frozen units");
        assert_eq!(r.rows.len(), 1, "fallback row found despite pruning");
        assert_eq!(r.rows[0][0], Value::Int(5));
    }

    #[test]
    fn coarse_invalidated_units_bypass_to_row_store() {
        let f = fixture();
        seed(&f, 0, 30);
        f.engine.run_once().unwrap();
        f.engine.imcs().mark_tenant_invalid(TenantId::DEFAULT);
        let r = scan(f.engine.imcs(), &f.store, OBJ, &Filter::all(), f.scns.current())
            .unwrap()
            .unwrap();
        assert_eq!(r.rows.len(), 30);
        assert_eq!(r.stats.imcu_rows, 0);
        assert!(r.stats.bypassed_units > 0);
    }

    #[test]
    fn multi_term_filter() {
        let f = fixture();
        seed(&f, 0, 100);
        f.engine.run_once().unwrap();
        let sc = schema(&f);
        let filt = Filter {
            terms: vec![
                Predicate::eq(&sc, "n1", Value::Int(3)).unwrap(),
                Predicate::eq(&sc, "c1", Value::str("c3")).unwrap(),
            ],
        };
        let r = scan(f.engine.imcs(), &f.store, OBJ, &filt, f.scns.current()).unwrap().unwrap();
        // k % 10 == 3 and k % 5 == 3 → k ≡ 3 (mod 10) ∧ k ≡ 3 (mod 5) → k % 10 = 3.
        // c1 = c{k%5}; k%10==3 → k%5==3 → matches. So all 10 rows match.
        assert_eq!(r.rows.len(), 10);
    }

    /// The vectorized path must agree with the preserved scalar reference
    /// on a workload mixing valid IMCU rows, SMU fallbacks, and uncovered
    /// blocks.
    #[test]
    fn vectorized_matches_scalar_reference() {
        let f = fixture();
        seed(&f, 0, 120);
        f.engine.run_once().unwrap();
        let mut tx = f.txm.begin(TenantId::DEFAULT);
        let locs: Vec<_> = [3, 13, 23]
            .iter()
            .map(|&k| f.txm.update_column_by_key(&mut tx, OBJ, k, "n1", Value::Int(3)).unwrap())
            .collect();
        let cscn = f.txm.commit(tx);
        for loc in locs {
            f.engine.imcs().invalidate(OBJ, loc, cscn);
        }
        seed(&f, 500, 520); // uncovered frontier
        let sc = schema(&f);
        let snapshot = f.scns.current();
        for filt in [
            Filter::all(),
            Filter::of(Predicate::eq(&sc, "n1", Value::Int(3)).unwrap()),
            Filter {
                terms: vec![
                    Predicate::new(&sc, "n1", CmpOp::Ge, Value::Int(2)).unwrap(),
                    Predicate::eq(&sc, "c1", Value::str("c2")).unwrap(),
                ],
            },
        ] {
            let v = scan(f.engine.imcs(), &f.store, OBJ, &filt, snapshot).unwrap().unwrap();
            let s = crate::scalar::scan_scalar(f.engine.imcs(), &f.store, OBJ, &filt, snapshot)
                .unwrap()
                .unwrap();
            assert_eq!(v.rows, s.rows, "filter {filt:?}");
        }
    }

    /// Degree-N execution must return the same rows and stats as serial.
    #[test]
    fn parallel_degree_is_deterministic() {
        let f = fixture();
        seed(&f, 0, 200); // 16-row units → many per-unit tasks
        f.engine.run_once().unwrap();
        let filt = Filter::of(Predicate::eq(&schema(&f), "n1", Value::Int(4)).unwrap());
        let snapshot = f.scns.current();
        let serial =
            scan_parallel(f.engine.imcs(), &f.store, OBJ, &filt, snapshot, 1).unwrap().unwrap();
        for degree in [2, 4, 8] {
            let par = scan_parallel(f.engine.imcs(), &f.store, OBJ, &filt, snapshot, degree)
                .unwrap()
                .unwrap();
            assert_eq!(par.rows, serial.rows, "degree {degree}");
            assert_eq!(par.stats, serial.stats, "degree {degree}");
        }
        assert!(serial.stats.parallel_tasks > 1);
    }
}
