//! Column units: the encoded per-column payload of an IMCU, with the
//! encoding selector.

use imadg_storage::{ColumnType, Value};

use crate::aggregate::Aggregates;
use crate::bitmap::SelBitmap;
use crate::encoding::dict::DictStrCu;
use crate::encoding::plain::PlainIntCu;
use crate::encoding::rle::RleIntCu;
use crate::predicate::Predicate;

/// Column-level min/max summary (the in-memory storage index input).
#[derive(Debug, Clone, PartialEq)]
pub enum MinMax {
    /// Integer bounds.
    Int(i64, i64),
    /// Lexicographic string bounds.
    Str(std::sync::Arc<str>, std::sync::Arc<str>),
    /// Column is entirely NULL in this unit.
    AllNull,
}

/// One encoded column of an IMCU.
#[derive(Debug, Clone)]
pub enum ColumnCu {
    /// Packed integers.
    Plain(PlainIntCu),
    /// Run-length-encoded integers.
    Rle(RleIntCu),
    /// Dictionary-encoded strings.
    Dict(DictStrCu),
}

impl ColumnCu {
    /// Encode `values` for a column of `ctype`, picking the encoding:
    /// strings dictionary-encode; integers RLE when runs dominate, plain
    /// otherwise.
    pub fn build(ctype: ColumnType, values: &[Value]) -> ColumnCu {
        match ctype {
            ColumnType::Varchar => ColumnCu::Dict(DictStrCu::build(values)),
            ColumnType::Int => {
                if RleIntCu::worthwhile(values) {
                    ColumnCu::Rle(RleIntCu::build(values))
                } else {
                    ColumnCu::Plain(PlainIntCu::build(values))
                }
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnCu::Plain(c) => c.len(),
            ColumnCu::Rle(c) => c.len(),
            ColumnCu::Dict(c) => c.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row`.
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnCu::Plain(c) => c.get(row),
            ColumnCu::Rle(c) => c.get(row),
            ColumnCu::Dict(c) => c.get(row),
        }
    }

    /// Min/max summary for the storage index.
    pub fn min_max(&self) -> MinMax {
        match self {
            ColumnCu::Plain(c) => c.min_max().map(|(a, b)| MinMax::Int(a, b)),
            ColumnCu::Rle(c) => c.min_max().map(|(a, b)| MinMax::Int(a, b)),
            ColumnCu::Dict(c) => c.min_max().map(|(a, b)| MinMax::Str(a, b)),
        }
        .unwrap_or(MinMax::AllNull)
    }

    /// Append matching row ids to `out` (scalar reference path).
    pub fn scan(&self, pred: &Predicate, out: &mut Vec<u32>) {
        match self {
            ColumnCu::Plain(c) => c.scan(pred, out),
            ColumnCu::Rle(c) => c.scan(pred, out),
            ColumnCu::Dict(c) => c.scan(pred, out),
        }
    }

    /// Write one match bit per row into `sel` (zeroed, sized to `len()`)
    /// through the encoding's branchless kernel.
    pub fn scan_bitmap(&self, pred: &Predicate, sel: &mut SelBitmap) {
        match self {
            ColumnCu::Plain(c) => c.scan_bitmap(pred, sel),
            ColumnCu::Rle(c) => c.scan_bitmap(pred, sel),
            ColumnCu::Dict(c) => c.scan_bitmap(pred, sel),
        }
    }

    /// Append the values at the given rows (ascending) to `out` — the
    /// batched column-at-a-time read under scan materialization, with the
    /// encoding dispatched once per column instead of once per cell.
    pub fn gather(&self, rows: &[u32], out: &mut Vec<Value>) {
        match self {
            ColumnCu::Plain(c) => c.gather(rows, out),
            ColumnCu::Rle(c) => c.gather(rows, out),
            ColumnCu::Dict(c) => c.gather(rows, out),
        }
    }

    /// Fold the selected rows into `aggs` without materializing row
    /// images (aggregation push-down over a selection bitmap).
    pub fn aggregate_masked(&self, sel: &SelBitmap, aggs: &mut Aggregates) {
        match self {
            ColumnCu::Plain(c) => c.aggregate_masked(sel, aggs),
            ColumnCu::Rle(c) => c.aggregate_masked(sel, aggs),
            ColumnCu::Dict(c) => c.aggregate_masked(sel, aggs),
        }
    }

    /// Approximate DRAM footprint of the encoded column (budget input for
    /// the cold tier's eviction policy).
    pub(crate) fn approx_bytes(&self) -> usize {
        match self {
            ColumnCu::Plain(c) => c.approx_bytes(),
            ColumnCu::Rle(c) => c.approx_bytes(),
            ColumnCu::Dict(c) => c.approx_bytes(),
        }
    }

    /// Serialize into `buf`: a one-byte encoding tag, then the encoding's
    /// own payload (the cold columnar page body).
    pub(crate) fn to_bytes(&self, buf: &mut Vec<u8>) {
        use crate::coldstore::codec::put_u8;
        match self {
            ColumnCu::Plain(c) => {
                put_u8(buf, 0);
                c.to_bytes(buf);
            }
            ColumnCu::Rle(c) => {
                put_u8(buf, 1);
                c.to_bytes(buf);
            }
            ColumnCu::Dict(c) => {
                put_u8(buf, 2);
                c.to_bytes(buf);
            }
        }
    }

    /// Decode a [`ColumnCu::to_bytes`] payload. `None` = corrupt.
    pub(crate) fn from_bytes(r: &mut crate::coldstore::codec::Reader<'_>) -> Option<ColumnCu> {
        match r.u8()? {
            0 => Some(ColumnCu::Plain(crate::encoding::plain::PlainIntCu::from_bytes(r)?)),
            1 => Some(ColumnCu::Rle(crate::encoding::rle::RleIntCu::from_bytes(r)?)),
            2 => Some(ColumnCu::Dict(crate::encoding::dict::DictStrCu::from_bytes(r)?)),
            _ => None,
        }
    }
}

impl MinMax {
    /// Serialize into `buf` (cold footer summary entry). `MinMax` is not
    /// serde-serializable (it holds `Arc<str>`), so the footer uses the
    /// same tag-byte codec as the column pages.
    pub(crate) fn to_bytes(&self, buf: &mut Vec<u8>) {
        use crate::coldstore::codec::*;
        match self {
            MinMax::Int(lo, hi) => {
                put_u8(buf, 0);
                put_i64(buf, *lo);
                put_i64(buf, *hi);
            }
            MinMax::Str(lo, hi) => {
                put_u8(buf, 1);
                put_str(buf, lo);
                put_str(buf, hi);
            }
            MinMax::AllNull => put_u8(buf, 2),
        }
    }

    /// Decode a [`MinMax::to_bytes`] payload. `None` = corrupt.
    pub(crate) fn from_bytes(r: &mut crate::coldstore::codec::Reader<'_>) -> Option<MinMax> {
        match r.u8()? {
            0 => Some(MinMax::Int(r.i64()?, r.i64()?)),
            1 => Some(MinMax::Str(r.str()?.into(), r.str()?.into())),
            2 => Some(MinMax::AllNull),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use imadg_storage::Schema;

    #[test]
    fn selector_picks_encodings() {
        let runs: Vec<Value> = (0..256).map(|i| Value::Int(i / 64)).collect();
        assert!(matches!(ColumnCu::build(ColumnType::Int, &runs), ColumnCu::Rle(_)));
        let distinct: Vec<Value> = (0..256).map(Value::Int).collect();
        assert!(matches!(ColumnCu::build(ColumnType::Int, &distinct), ColumnCu::Plain(_)));
        let strs = vec![Value::str("a"), Value::str("b")];
        assert!(matches!(ColumnCu::build(ColumnType::Varchar, &strs), ColumnCu::Dict(_)));
    }

    #[test]
    fn uniform_access_across_encodings() {
        let vals: Vec<Value> = (0..100).map(|i| Value::Int(i % 3)).collect();
        for cu in [ColumnCu::Plain(PlainIntCu::build(&vals)), ColumnCu::Rle(RleIntCu::build(&vals))]
        {
            assert_eq!(cu.len(), 100);
            assert_eq!(cu.get(4), Value::Int(1));
            assert_eq!(cu.min_max(), MinMax::Int(0, 2));
            let s = Schema::of(&[("n", ColumnType::Int)]);
            let p = Predicate::new(&s, "n", CmpOp::Eq, Value::Int(2)).unwrap();
            let mut out = Vec::new();
            cu.scan(&p, &mut out);
            assert_eq!(out.len(), 33);
        }
    }

    #[test]
    fn all_null_summary() {
        let cu = ColumnCu::build(ColumnType::Int, &[Value::Null, Value::Null]);
        assert_eq!(cu.min_max(), MinMax::AllNull);
    }
}
