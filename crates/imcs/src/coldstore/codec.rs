//! Little-endian byte codec plus CRC32 for the cold columnar file format.
//!
//! Deliberately tiny: fixed-width little-endian primitives written into a
//! `Vec<u8>` and read back through a bounds-checked [`Reader`]. Every
//! decode path returns `Option` — corruption is an expected input (torn
//! writes, truncated footers), and the scan path degrades to the row
//! store instead of panicking.

/// Upper bound on any length field read from disk. A corrupt length must
/// not translate into a multi-gigabyte allocation before the CRC check
/// has a chance to reject the payload.
pub(crate) const MAX_LEN: usize = 1 << 26;

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over a byte slice.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// A length field that must be a sane allocation size.
    pub(crate) fn len_u32(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        (n <= MAX_LEN).then_some(n)
    }

    /// A row-count field (u64 on disk, bounded like any other length).
    pub(crate) fn len_u64(&mut self) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        (n <= MAX_LEN).then_some(n)
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        let n = self.len_u32()?;
        std::str::from_utf8(self.take(n)?).ok().map(str::to_string)
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`. Matches the
/// framing checksum used by the durable redo log so torn cold files and
/// torn wal segments fail the same way.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = u32::MAX;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_i64(&mut buf, i64::MIN);
        put_str(&mut buf, "colonne");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.i64(), Some(i64::MIN));
        assert_eq!(r.str().as_deref(), Some("colonne"));
        assert!(r.is_done());
    }

    #[test]
    fn truncated_reads_return_none() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 9);
        let mut r = Reader::new(&buf[..2]);
        assert_eq!(r.u32(), None);
        // An over-long length field is rejected before allocating.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert_eq!(Reader::new(&buf).len_u32(), None);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
