//! The cold tier of the column store (ROADMAP item 4): IMCUs whose DRAM
//! the memory budget can no longer afford are serialized to an on-disk
//! columnar format (`format`), still scannable via footer min-max pruning
//! and decode-time predicate pushdown. The `tier` engine decides what
//! moves in which direction and restores the tier after a crash restart.

pub(crate) mod codec;
pub mod format;
pub mod tier;

pub use format::{write_cold_file, ColdMeta, ColdUnit, ColdUnitFile};
pub use tier::{restore_cold_tier, ColdTier, TierReport};
