//! The cold-tier engine: memory-pressure-driven eviction of IMCUs to the
//! on-disk columnar format, read-driven recall, L-Store-style
//! re-compaction of journal-heavy cold units, and restart-time restore.
//!
//! One engine runs per instance, driven as a runtime stage (the same
//! cooperative model as population). Every pass is one *decay epoch*:
//! per-handle scan counters and per-cold-unit read counters are drained,
//! so "recently touched" always means "since the last pass".
//!
//! Policy in one sentence: keep `ImcsStore::hot_bytes` under
//! `ImcsConfig::memory_budget_bytes` by evicting the least-scanned,
//! largest, journal-light units first — journal-heavy units are excluded
//! because they are about to be repopulated anyway (evicting them would
//! thrash: serialize, journal grows, re-compact, recall).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use imadg_common::metrics::TierMetrics;
use imadg_common::{ImcsConfig, Result, Scn};
use imadg_storage::Store;

use super::format::{write_cold_file, ColdUnit, ColdUnitFile};
use crate::imcs_store::{ImcsStore, ImcuHandle, ObjectImcs};
use crate::imcu::Imcu;
use crate::population::SnapshotSource;

/// Outcome of one tier pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierReport {
    /// Hot units serialized and evicted.
    pub evicted: usize,
    /// Cold units decoded back into DRAM.
    pub recalled: usize,
    /// Cold units re-compacted (journal merged into a fresh file).
    pub recompacted: usize,
    /// Obsolete cold files detached and deleted (a repopulation swap
    /// raced an eviction).
    pub orphans_cleared: usize,
}

impl TierReport {
    /// Did the pass do anything?
    pub fn any(&self) -> bool {
        self.evicted + self.recalled + self.recompacted + self.orphans_cleared > 0
    }
}

/// The per-instance cold-tier engine.
pub struct ColdTier {
    store: Arc<Store>,
    imcs: Arc<ImcsStore>,
    source: SnapshotSource,
    config: ImcsConfig,
    dir: PathBuf,
    metrics: Arc<TierMetrics>,
}

impl ColdTier {
    /// Build an engine writing cold files under `dir`.
    pub fn new(
        store: Arc<Store>,
        imcs: Arc<ImcsStore>,
        source: SnapshotSource,
        config: ImcsConfig,
        dir: PathBuf,
        metrics: Arc<TierMetrics>,
    ) -> ColdTier {
        ColdTier { store, imcs, source, config, dir, metrics }
    }

    /// The cold-tier directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The column store this engine tiers.
    pub fn imcs(&self) -> &Arc<ImcsStore> {
        &self.imcs
    }

    /// One pass: sweep orphans, re-compact journal-heavy cold units,
    /// recall recently-read cold units that fit, then evict down to the
    /// memory budget. Refreshes the on-disk gauges at the end.
    pub fn run_once(&self) -> Result<TierReport> {
        let mut report = TierReport::default();
        let pairs = self.all_handles();

        for (_, handle) in &pairs {
            if let Some(orphan) = handle.clear_cold_if_hot() {
                let _ = std::fs::remove_file(&orphan.path);
                report.orphans_cleared += 1;
            }
        }
        for (obj, handle) in &pairs {
            if self.recompact_if_stale(obj, handle)? {
                report.recompacted += 1;
            }
        }
        report.recalled = self.recall_pass(&pairs);
        report.evicted = self.evict_pass(&pairs)?;
        self.refresh_gauges();
        Ok(report)
    }

    /// Drive the tier to a fixed point: loop until a pass does nothing.
    pub fn run_until_idle(&self) -> Result<TierReport> {
        let mut total = TierReport::default();
        loop {
            let r = self.run_once()?;
            if !r.any() {
                return Ok(total);
            }
            total.evicted += r.evicted;
            total.recalled += r.recalled;
            total.recompacted += r.recompacted;
            total.orphans_cleared += r.orphans_cleared;
        }
    }

    fn all_handles(&self) -> Vec<(Arc<ObjectImcs>, Arc<ImcuHandle>)> {
        self.imcs
            .all_objects()
            .into_iter()
            .flat_map(|o| o.handles().into_iter().map(move |h| (o.clone(), h)))
            .collect()
    }

    /// Re-compact one cold unit when its journal crosses the repopulation
    /// threshold (or the unit was coarse-invalidated): rebuild the unit
    /// from the row store at a fresh consistency-point snapshot — the row
    /// store at that snapshot *is* the serialized data merged with every
    /// journaled change — write a fresh cold file, swap it in (SMU entries
    /// newer than the rebuild carry over), and delete the old file.
    fn recompact_if_stale(&self, obj: &ObjectImcs, handle: &ImcuHandle) -> Result<bool> {
        if !handle.is_cold() {
            return Ok(false);
        }
        let Some(cold) = handle.cold() else { return Ok(false) };
        let smu = handle.smu();
        let all_invalid = smu.view().all_invalid();
        if !all_invalid && smu.staleness(cold.meta.rows) < self.config.repopulate_threshold {
            return Ok(false);
        }
        let object = obj.object;
        let Ok(table) = self.store.table(object) else {
            // Table dropped from the dictionary: the file is garbage.
            self.discard_cold(handle, &cold);
            return Ok(false);
        };
        let schema = table.schema.read().clone();
        let Some(snapshot) = self.source.capture_and_register(|_| {}) else {
            return Ok(false); // no consistency point yet
        };
        if snapshot <= cold.meta.snapshot
            || (!all_invalid
                && snapshot.0.saturating_sub(cold.meta.snapshot.0)
                    < self.config.repopulate_min_scn_gap)
        {
            return Ok(false); // nothing newer to absorb / gap throttle
        }
        let exprs = self.imcs.expressions(object);
        let rebuilt = Imcu::build_with_expressions(
            &self.store,
            object,
            table.tenant,
            cold.meta.dbas.clone(),
            snapshot,
            &schema,
            &exprs,
        )?;
        let Ok((path, meta, bytes)) = write_cold_file(&self.dir, &rebuilt) else {
            return Ok(false); // disk trouble: keep serving the old file
        };
        handle.swap_to_cold(snapshot, Arc::new(ColdUnit::new(path, meta, bytes)));
        let _ = std::fs::remove_file(&cold.path);
        self.metrics.tier_recompactions.inc();
        Ok(true)
    }

    /// Recall cold units that took actual cold reads since the last pass,
    /// budget permitting (a zero budget means unlimited — everything that
    /// is being read may come back).
    fn recall_pass(&self, pairs: &[(Arc<ObjectImcs>, Arc<ImcuHandle>)]) -> usize {
        let budget = self.config.memory_budget_bytes;
        let mut hot = self.imcs.hot_bytes();
        let mut recalled = 0usize;
        for (_, handle) in pairs {
            if !handle.is_cold() {
                continue;
            }
            let Some(cold) = handle.cold() else { continue };
            if cold.take_reads() == 0 {
                continue;
            }
            if budget > 0 && hot + cold.bytes as usize > budget {
                continue; // no headroom — stays cold, pruning keeps it cheap
            }
            let decoded = ColdUnitFile::open(&cold.path).and_then(|f| f.into_imcu());
            let Some(imcu) = decoded else {
                // Corrupt file: detach so the population engine rebuilds
                // the unit from the row store.
                self.metrics.tier_read_errors.inc();
                self.discard_cold(handle, &cold);
                continue;
            };
            hot += imcu.approx_bytes();
            handle.install_hot(imcu);
            let _ = std::fs::remove_file(&cold.path);
            self.metrics.tier_recalls.inc();
            recalled += 1;
        }
        recalled
    }

    /// Evict least-recently-scanned, journal-light units until hot DRAM
    /// fits the budget.
    fn evict_pass(&self, pairs: &[(Arc<ObjectImcs>, Arc<ImcuHandle>)]) -> Result<usize> {
        let budget = self.config.memory_budget_bytes;
        if budget == 0 {
            return Ok(0); // unlimited: nothing to do
        }
        let mut hot = self.imcs.hot_bytes();
        if hot <= budget {
            return Ok(0);
        }
        // Score every hot unit. Draining the scan counters here makes one
        // tier pass one recency epoch for every candidate, evicted or not.
        let mut candidates: Vec<(&Arc<ImcuHandle>, u64, usize)> = Vec::new();
        for (_, handle) in pairs {
            let imcu = handle.imcu();
            let scans = handle.take_scans();
            if imcu.is_pending() || imcu.rows() == 0 {
                continue;
            }
            // Journal-size-aware: a unit past the repopulation threshold
            // is about to be rebuilt — evicting it now would thrash.
            if handle.smu().staleness(imcu.rows()) >= self.config.repopulate_threshold {
                continue;
            }
            candidates.push((handle, scans, imcu.approx_bytes()));
        }
        // Coldest first; among equals, largest first (fewest evictions to
        // reach the budget).
        candidates.sort_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)));
        let mut evicted = 0usize;
        for (handle, _, bytes) in candidates {
            if hot <= budget {
                break;
            }
            let imcu = handle.imcu();
            if imcu.is_pending() {
                continue; // raced
            }
            let Ok((path, meta, file_bytes)) = write_cold_file(&self.dir, &imcu) else {
                continue; // disk trouble: skip this candidate
            };
            if handle.evict_to_cold(Arc::new(ColdUnit::new(path.clone(), meta, file_bytes))) {
                hot = hot.saturating_sub(bytes);
                self.metrics.tier_evictions.inc();
                evicted += 1;
            } else {
                // A repopulation swap raced us: the file describes a unit
                // that is no longer in the slot.
                let _ = std::fs::remove_file(&path);
            }
        }
        Ok(evicted)
    }

    /// Detach and delete one cold unit's state + file.
    fn discard_cold(&self, handle: &ImcuHandle, cold: &ColdUnit) {
        handle.drop_cold();
        let _ = std::fs::remove_file(&cold.path);
    }

    /// Current (bytes on disk, cold-unit count) over this engine's store —
    /// multi-instance deployments sum these across engines before setting
    /// the shared gauges.
    pub fn sample(&self) -> (u64, u64) {
        let mut bytes = 0u64;
        let mut units = 0u64;
        for (_, handle) in self.all_handles() {
            if handle.is_cold() {
                if let Some(cold) = handle.cold() {
                    bytes += cold.bytes;
                    units += 1;
                }
            }
        }
        (bytes, units)
    }

    /// Re-sample the on-disk gauges from the handles' attached cold state.
    fn refresh_gauges(&self) {
        let (bytes, units) = self.sample();
        self.metrics.tier_bytes_on_disk.set(bytes);
        self.metrics.cold_units.set(units);
    }
}

/// Restart-time restore: register every qualifying cold file under `dir`
/// as a cold unit, from footer metadata alone — no column decode, no row
/// store scan. This is the "instant re-population" path: the moment a
/// file's handle is registered, scans serve it with pruning and pushdown.
///
/// `floor` is the oldest SCN the caller's redo replay can re-mine from.
/// A file frozen *before* the floor is deleted: invalidations for commits
/// between its snapshot and the floor were only in the lost in-memory
/// journal and cannot be recovered, so serving the file could return
/// stale data. Files at or past the floor are safe — the caller must then
/// lower its mining gate to the returned minimum snapshot so every commit
/// after each file's freeze point re-mines into the fresh SMU (per-unit,
/// replayed mining at or below a unit's snapshot is absorbed and dropped
/// by [`ImcuHandle::invalidate`]).
///
/// Returns the number of files restored and the minimum snapshot among
/// them (`None` when nothing was restored) — the mining gate to re-mine
/// from.
pub fn restore_cold_tier(
    imcs: &ImcsStore,
    store: &Store,
    dir: &Path,
    floor: Scn,
    metrics: &TierMetrics,
) -> Result<(usize, Option<Scn>)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok((0, None)); // no cold tier yet
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "imcf"))
        .collect();
    paths.sort();
    let mut restored = 0usize;
    let mut bytes_on_disk = 0u64;
    let mut min_snapshot: Option<Scn> = None;
    for path in paths {
        let Some(file) = ColdUnitFile::open(&path) else {
            // Torn eviction or bit rot: the row store still has the data.
            metrics.tier_read_errors.inc();
            let _ = std::fs::remove_file(&path);
            continue;
        };
        let meta = file.meta;
        let stale = meta.snapshot < floor;
        // The catalog may be empty here — after a hard crash tables only
        // re-create through DDL-marker replay, which runs *after* this
        // restore. An unknown table is restored optimistically: replayed
        // schema-changing DDL drops the object's units anyway, so only a
        // *known* version mismatch condemns the file now.
        let table = store.table(meta.object).ok();
        let schema_known_stale =
            table.as_ref().is_some_and(|t| t.schema.read().version() != meta.schema_version);
        if stale || schema_known_stale {
            let _ = std::fs::remove_file(&path);
            continue;
        }
        let obj = imcs.ensure_object(meta.object, meta.tenant);
        if meta.dbas.iter().any(|d| obj.covers(*d)) {
            // Another unit already claims part of the range (duplicate
            // file from a crashed re-compaction): keep the registered one.
            let _ = std::fs::remove_file(&path);
            continue;
        }
        let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let handle = Arc::new(ImcuHandle::new(Imcu::pending(
            meta.object,
            meta.tenant,
            meta.dbas.clone(),
            meta.snapshot,
            meta.schema_version,
        )));
        let snapshot = meta.snapshot;
        handle.restore_cold(Arc::new(ColdUnit::new(path, meta, file_bytes)));
        obj.register(handle);
        bytes_on_disk += file_bytes;
        restored += 1;
        min_snapshot = Some(min_snapshot.map_or(snapshot, |m: Scn| m.min(snapshot)));
    }
    metrics.tier_bytes_on_disk.set(bytes_on_disk);
    metrics.cold_units.set(restored as u64);
    Ok((restored, min_snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationEngine;
    use crate::predicate::{CmpOp, Filter, Predicate};
    use crate::scan::scan;
    use imadg_common::sync::ScnService;
    use imadg_common::{ObjectId, TenantId};
    use imadg_redo::LogBuffer;
    use imadg_storage::{ColumnType, DbaAllocator, Schema, TableSpec, Value};
    use imadg_txn::{InMemoryRegistry, LockTable, TxnIdService, TxnManager};

    const OBJ: ObjectId = ObjectId(1);

    fn schema() -> Schema {
        Schema::of(&[("id", ColumnType::Int), ("n", ColumnType::Int)])
    }

    fn pred(col: &str, op: CmpOp, v: i64) -> Filter {
        Filter::of(Predicate::new(&schema(), col, op, Value::Int(v)).unwrap())
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("imadg-tier-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn primary() -> (TxnManager, Arc<Store>, Arc<ScnService>) {
        let store = Arc::new(Store::new());
        let scns = Arc::new(ScnService::new());
        let txm = TxnManager::new(
            store.clone(),
            scns.clone(),
            Arc::new(LogBuffer::new(imadg_common::RedoThreadId(1))),
            Arc::new(TxnIdService::new()),
            Arc::new(LockTable::new()),
            Arc::new(InMemoryRegistry::new()),
            Arc::new(DbaAllocator::default()),
        );
        txm.create_table(TableSpec {
            id: OBJ,
            name: "t".into(),
            tenant: TenantId::DEFAULT,
            schema: schema(),
            key_ordinal: 0,
            rows_per_block: 16,
        })
        .unwrap();
        (txm, store, scns)
    }

    fn load(txm: &TxnManager, n: i64) {
        let mut tx = txm.begin(TenantId::DEFAULT);
        for k in 0..n {
            txm.insert(&mut tx, OBJ, vec![Value::Int(k), Value::Int(k * 2)]).unwrap();
        }
        txm.commit(tx);
    }

    /// Populated store + tier over a temp dir with the given budget.
    fn tiered(
        budget: usize,
        tag: &str,
    ) -> (TxnManager, Arc<Store>, Arc<ScnService>, Arc<ImcsStore>, ColdTier, PathBuf) {
        let (txm, store, scns) = primary();
        load(&txm, 100); // 7 blocks of 16 → 4 units of ≤32 rows
        let cfg = ImcsConfig {
            imcu_max_rows: 32,
            memory_budget_bytes: budget,
            repopulate_min_scn_gap: 0,
            ..Default::default()
        };
        let imcs = Arc::new(ImcsStore::new());
        let engine = PopulationEngine::new(
            store.clone(),
            imcs.clone(),
            SnapshotSource::Primary(scns.clone()),
            cfg.clone(),
        )
        .unwrap();
        engine.enable(OBJ);
        engine.run_once().unwrap();
        let dir = tmp(tag);
        let tier = ColdTier::new(
            store.clone(),
            imcs.clone(),
            SnapshotSource::Primary(scns.clone()),
            cfg,
            dir.clone(),
            Arc::new(TierMetrics::default()),
        );
        (txm, store, scns, imcs, tier, dir)
    }

    fn rows_of(imcs: &ImcsStore, store: &Store, filter: &Filter, at: Scn) -> Vec<Vec<Value>> {
        let r = scan(imcs, store, OBJ, filter, at).unwrap().unwrap();
        r.rows.into_iter().map(|row| row.values().to_vec()).collect()
    }

    #[test]
    fn evicts_to_budget_and_serves_bit_identical_scans() {
        let (_txm, store, scns, imcs, tier, dir) = tiered(1, "evict");
        let at = scns.current();
        let all = Filter::default();
        let hot_rows = rows_of(&imcs, &store, &all, at);
        assert_eq!(hot_rows.len(), 100);

        let report = tier.run_once().unwrap();
        assert_eq!(report.evicted, 4, "1-byte budget evicts every unit");
        let n_files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(n_files, 4);
        assert!(imcs.hot_bytes() < 1024, "placeholders only");

        let cold_rows = rows_of(&imcs, &store, &all, at);
        assert_eq!(hot_rows, cold_rows, "cold scan must be bit-identical");
        let r = scan(&imcs, &store, OBJ, &all, at).unwrap().unwrap();
        assert_eq!(r.stats.cold_read_units, 4);
        assert_eq!(r.stats.cold_read_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn footer_pruning_skips_non_matching_cold_units() {
        let (_txm, store, scns, imcs, tier, dir) = tiered(1, "prune");
        let at = scns.current();
        assert_eq!(tier.run_once().unwrap().evicted, 4);
        // ids 0..100 over units [0,32) [32,64) [64,96) [96,100): id >= 96
        // lives in the last unit only.
        let f = pred("id", CmpOp::Ge, 96);
        let r = scan(&imcs, &store, OBJ, &f, at).unwrap().unwrap();
        assert_eq!(r.rows.len(), 4);
        assert!(
            r.stats.cold_pruned_units >= 3,
            "min-max footers must prune non-matching units, got {:?}",
            r.stats
        );
        assert_eq!(r.stats.cold_read_units, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recalls_read_units_when_budget_allows() {
        let (_txm, store, scns, imcs, tier, dir) = tiered(1, "recall");
        let at = scns.current();
        assert_eq!(tier.run_once().unwrap().evicted, 4);
        // Touch every cold unit, then lift the budget: the next pass
        // brings everything that was read back into DRAM.
        let all = Filter::default();
        let before = rows_of(&imcs, &store, &all, at);
        let cfg = ImcsConfig { memory_budget_bytes: 0, ..Default::default() };
        let unbudgeted = ColdTier::new(
            store.clone(),
            imcs.clone(),
            SnapshotSource::Primary(scns.clone()),
            cfg,
            dir.clone(),
            Arc::new(TierMetrics::default()),
        );
        let report = unbudgeted.run_once().unwrap();
        assert_eq!(report.recalled, 4);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0, "files deleted on recall");
        let after = rows_of(&imcs, &store, &all, at);
        assert_eq!(before, after);
        let r = scan(&imcs, &store, OBJ, &all, at).unwrap().unwrap();
        assert_eq!(r.stats.cold_read_units, 0, "units are hot again");
        assert_eq!(r.stats.scanned_units, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recompacts_journal_heavy_cold_units() {
        let (txm, store, scns, imcs, tier, dir) = tiered(1, "recompact");
        assert_eq!(tier.run_once().unwrap().evicted, 4);
        // Rewrite a third of the table; route the invalidations to the
        // SMUs the way the standby's recovery workers would.
        let mut tx = txm.begin(TenantId::DEFAULT);
        let locs: Vec<_> = (0..33)
            .map(|k| txm.update_by_key(&mut tx, OBJ, k, |r| vec![r.get(0).clone(), Value::Int(-1)]))
            .collect::<imadg_common::Result<Vec<_>>>()
            .unwrap();
        let commit = txm.commit(tx);
        for loc in locs {
            imcs.invalidate(OBJ, loc, commit);
        }
        let report = tier.run_once().unwrap();
        assert!(report.recompacted >= 1, "stale cold units must re-compact: {report:?}");
        // The rebuilt files serve the new values without any journal pass.
        let at = scns.current();
        let f = pred("n", CmpOp::Eq, -1);
        let r = scan(&imcs, &store, OBJ, &f, at).unwrap().unwrap();
        assert_eq!(r.rows.len(), 33);
        assert_eq!(r.stats.cold_read_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_registers_files_instantly_and_respects_the_gate() {
        let (_txm, store, scns, imcs, tier, dir) = tiered(1, "restore");
        let at = scns.current();
        let all = Filter::default();
        let before = rows_of(&imcs, &store, &all, at);
        assert_eq!(tier.run_once().unwrap().evicted, 4);

        // "Restart": a brand-new column store, restored from footers only.
        let fresh = ImcsStore::new();
        let metrics = TierMetrics::default();
        let (n, min_snap) = restore_cold_tier(&fresh, &store, &dir, Scn::ZERO, &metrics).unwrap();
        assert_eq!(n, 4);
        assert!(min_snap.is_some_and(|s| s <= at), "restore reports the re-mine gate");
        assert_eq!(metrics.cold_units.get(), 4);
        let after = rows_of(&fresh, &store, &all, at);
        assert_eq!(before, after, "restored tier must serve identical data");

        // A floor past the files' snapshots rejects them all: their journal
        // updates died with the crash and cannot be re-mined, so the files
        // cannot be trusted.
        let fresh2 = ImcsStore::new();
        let (n2, _) = restore_cold_tier(&fresh2, &store, &dir, Scn(at.0 + 10), &metrics).unwrap();
        assert_eq!(n2, 0);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0, "gated files deleted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cold_file_degrades_to_row_store_without_panicking() {
        let (_txm, store, scns, imcs, tier, dir) = tiered(1, "corrupt");
        let at = scns.current();
        let all = Filter::default();
        let before = rows_of(&imcs, &store, &all, at);
        assert_eq!(tier.run_once().unwrap().evicted, 4);
        // Torn write: truncate one file mid-body.
        let victim = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

        let r = scan(&imcs, &store, OBJ, &all, at).unwrap().unwrap();
        assert_eq!(r.stats.cold_read_errors, 1);
        let rows: Vec<_> = r.rows.into_iter().map(|row| row.values().to_vec()).collect();
        assert_eq!(before, rows, "row store covers the corrupt unit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
