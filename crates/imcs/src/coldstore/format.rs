//! The cold columnar unit file format.
//!
//! One file per evicted IMCU, laid out for two access patterns: *restart
//! registration* (read only the footer — no column decode) and *predicate
//! pushdown* (decode only the columns a scan actually touches):
//!
//! ```text
//! [magic u32][version u32]                         header
//! [len u32][crc32 u32][column 0 payload]           one CRC-framed entry
//! ...                                                per encoded column
//! [len u32][crc32 u32][row-location payload]
//! [len u32][crc32 u32][footer payload]
//! [footer_off u64][magic u32]                      fixed 12-byte trailer
//! ```
//!
//! The entry framing mirrors the durable redo log's `[len][crc][payload]`
//! scheme, so a torn cold file fails exactly like a torn wal segment: the
//! CRC rejects the entry and the caller degrades — here, to a row-store
//! scan of the unit's block range, never a panic and never a wrong answer.
//! The footer carries everything the tier needs without touching column
//! data: per-column min/max + null counts + pre-computed aggregates, the
//! covered DBAs, the row count, and each column entry's file offset.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use imadg_common::{Dba, ObjectId, Scn, TenantId};
use imadg_storage::RowLoc;

use super::codec::{self, Reader};
use crate::column::{ColumnCu, MinMax};
use crate::imcu::{ColAgg, Imcu};
use crate::storage_index::StorageIndex;

/// File magic: `IMCF` (In-Memory Columnar File), little-endian.
const MAGIC: u32 = u32::from_le_bytes(*b"IMCF");
/// Format version. Bumped on any layout change; readers reject unknown
/// versions rather than guessing.
const VERSION: u32 = 1;
/// Header bytes: magic + version.
const HEADER: usize = 8;
/// Trailer bytes: footer offset + magic echo.
const TRAILER: usize = 12;

/// Footer metadata of one cold unit — everything the scan engine needs
/// for pruning and aggregate pushdown with zero file I/O.
#[derive(Debug, Clone)]
pub struct ColdMeta {
    /// Owning object.
    pub object: ObjectId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Blocks the unit covers.
    pub dbas: Vec<Dba>,
    /// Snapshot SCN the serialized data is consistent as of.
    pub snapshot: Scn,
    /// Schema version at population time.
    pub schema_version: u32,
    /// Row count.
    pub rows: usize,
    /// Number of base (schema) columns.
    pub base_arity: usize,
    /// Virtual (expression) column names, in storage order.
    pub virtual_names: Vec<String>,
    /// Per-column pre-computed aggregates (SUM / non-null counts).
    pub col_aggs: Vec<ColAgg>,
    /// Per-column NULL counts.
    pub null_counts: Vec<u64>,
    /// Per-column min/max, as a storage index for `may_match` pruning.
    pub summaries: StorageIndex,
    /// File offset of each column's CRC-framed entry.
    col_offsets: Vec<u64>,
    /// File offset of the row-location entry.
    locs_offset: u64,
}

impl ColdMeta {
    /// Storage ordinal of a virtual column, if the unit materialized it.
    pub fn virtual_ordinal(&self, name: &str) -> Option<usize> {
        self.virtual_names.iter().position(|n| n == name).map(|i| self.base_arity + i)
    }

    /// Number of encoded columns (base + virtual).
    pub fn column_count(&self) -> usize {
        self.col_offsets.len()
    }

    /// Does the footer min/max exclude every serialized row from `filter`?
    /// A `true` answer prunes the unit with zero file I/O.
    pub fn prunes(&self, filter: &crate::predicate::Filter) -> bool {
        filter.terms.iter().any(|p| !self.summaries.may_match(p))
    }
}

/// Cold-tier state attached to an [`crate::ImcuHandle`]: where the file
/// lives, its footer metadata, and read-recency for the recall policy.
#[derive(Debug)]
pub struct ColdUnit {
    /// The cold file.
    pub path: PathBuf,
    /// Footer metadata (pruning + pushdown without I/O).
    pub meta: ColdMeta,
    /// On-disk size in bytes.
    pub bytes: u64,
    /// Cold reads since the tier engine's last pass (recall-policy input).
    reads: AtomicU64,
}

impl ColdUnit {
    /// Wrap a written or re-opened cold file.
    pub fn new(path: PathBuf, meta: ColdMeta, bytes: u64) -> ColdUnit {
        ColdUnit { path, meta, bytes, reads: AtomicU64::new(0) }
    }

    /// Note one cold read (a scan had to open the file).
    pub fn note_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain the read counter (one tier pass = one decay epoch).
    pub fn take_reads(&self) -> u64 {
        self.reads.swap(0, Ordering::Relaxed)
    }
}

/// Append one CRC-framed entry; returns its file offset.
fn frame(out: &mut Vec<u8>, payload: &[u8]) -> u64 {
    let off = out.len() as u64;
    codec::put_u32(out, payload.len() as u32);
    codec::put_u32(out, codec::crc32(payload));
    out.extend_from_slice(payload);
    off
}

/// Serialize `imcu` into the cold file byte image plus its footer meta.
fn serialize(imcu: &Imcu) -> (Vec<u8>, ColdMeta) {
    let mut out = Vec::new();
    codec::put_u32(&mut out, MAGIC);
    codec::put_u32(&mut out, VERSION);

    let mut col_offsets = Vec::with_capacity(imcu.columns().len());
    let mut scratch = Vec::new();
    for col in imcu.columns() {
        scratch.clear();
        col.to_bytes(&mut scratch);
        col_offsets.push(frame(&mut out, &scratch));
    }

    scratch.clear();
    codec::put_u64(&mut scratch, imcu.rows() as u64);
    for loc in imcu.locs() {
        codec::put_u64(&mut scratch, loc.dba.0);
        codec::put_u32(&mut scratch, u32::from(loc.slot));
    }
    let locs_offset = frame(&mut out, &scratch);

    let rows = imcu.rows() as u64;
    let null_counts: Vec<u64> =
        imcu.col_aggs().iter().map(|a| rows.saturating_sub(a.non_null)).collect();
    let meta = ColdMeta {
        object: imcu.object,
        tenant: imcu.tenant,
        dbas: imcu.dbas.clone(),
        snapshot: imcu.snapshot,
        schema_version: imcu.schema_version,
        rows: imcu.rows(),
        base_arity: imcu.base_arity(),
        virtual_names: imcu.virtual_names().to_vec(),
        col_aggs: imcu.col_aggs().to_vec(),
        null_counts,
        summaries: imcu.storage_index.clone(),
        col_offsets,
        locs_offset,
    };

    scratch.clear();
    footer_bytes(&meta, &mut scratch);
    let footer_off = frame(&mut out, &scratch);
    codec::put_u64(&mut out, footer_off);
    codec::put_u32(&mut out, MAGIC);
    (out, meta)
}

fn footer_bytes(meta: &ColdMeta, buf: &mut Vec<u8>) {
    use codec::*;
    put_u32(buf, meta.object.0);
    put_u32(buf, u32::from(meta.tenant.0));
    put_u64(buf, meta.snapshot.0);
    put_u32(buf, meta.schema_version);
    put_u64(buf, meta.rows as u64);
    put_u32(buf, meta.dbas.len() as u32);
    for dba in &meta.dbas {
        put_u64(buf, dba.0);
    }
    put_u32(buf, meta.base_arity as u32);
    put_u32(buf, meta.virtual_names.len() as u32);
    for name in &meta.virtual_names {
        put_str(buf, name);
    }
    put_u32(buf, meta.col_offsets.len() as u32);
    for ord in 0..meta.col_offsets.len() {
        put_u64(buf, meta.col_offsets[ord]);
        let agg = meta.col_aggs.get(ord).copied().unwrap_or_default();
        buf.extend_from_slice(&agg.sum.to_le_bytes());
        put_u64(buf, agg.non_null);
        put_u64(buf, meta.null_counts.get(ord).copied().unwrap_or(0));
        meta.summaries.summary(ord).unwrap_or(&MinMax::AllNull).to_bytes(buf);
    }
    put_u64(buf, meta.locs_offset);
}

fn footer_from_bytes(payload: &[u8]) -> Option<ColdMeta> {
    let mut r = Reader::new(payload);
    let object = ObjectId(r.u32()?);
    let tenant = TenantId(u16::try_from(r.u32()?).ok()?);
    let snapshot = Scn(r.u64()?);
    let schema_version = r.u32()?;
    let rows = r.len_u64()?;
    let n_dbas = r.len_u32()?;
    let dbas = (0..n_dbas).map(|_| r.u64().map(Dba)).collect::<Option<Vec<_>>>()?;
    let base_arity = r.len_u32()?;
    let n_virtual = r.len_u32()?;
    let virtual_names = (0..n_virtual).map(|_| r.str()).collect::<Option<Vec<_>>>()?;
    let n_cols = r.len_u32()?;
    if n_cols != base_arity + n_virtual && n_cols != 0 {
        return None;
    }
    let mut col_offsets = Vec::with_capacity(n_cols);
    let mut col_aggs = Vec::with_capacity(n_cols);
    let mut null_counts = Vec::with_capacity(n_cols);
    let mut summaries = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        col_offsets.push(r.u64()?);
        let sum = i128::from_le_bytes(r.take(16)?.try_into().ok()?);
        let non_null = r.u64()?;
        col_aggs.push(ColAgg { sum, non_null });
        null_counts.push(r.u64()?);
        summaries.push(MinMax::from_bytes(&mut r)?);
    }
    let locs_offset = r.u64()?;
    r.is_done().then_some(ColdMeta {
        object,
        tenant,
        dbas,
        snapshot,
        schema_version,
        rows,
        base_arity,
        virtual_names,
        col_aggs,
        null_counts,
        summaries: StorageIndex::new(summaries),
        col_offsets,
        locs_offset,
    })
}

/// Write `imcu` as a cold file under `dir` (tmp + rename so a crash mid-
/// eviction leaves either no file or a complete one). Returns the final
/// path, the footer meta, and the file size.
pub fn write_cold_file(dir: &Path, imcu: &Imcu) -> std::io::Result<(PathBuf, ColdMeta, u64)> {
    std::fs::create_dir_all(dir)?;
    let (bytes, meta) = serialize(imcu);
    let first_dba = imcu.dbas.first().map_or(0, |d| d.0);
    let name = format!("obj{}-dba{}-scn{}.imcf", imcu.object.0, first_dba, imcu.snapshot.0);
    let path = dir.join(&name);
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok((path, meta, bytes.len() as u64))
}

/// An opened, footer-verified cold file. The whole file is read in one
/// I/O; individual columns stay *encoded* until a scan decodes exactly
/// the ones its predicate and projection touch.
pub struct ColdUnitFile {
    bytes: Vec<u8>,
    /// Footer metadata.
    pub meta: ColdMeta,
}

impl ColdUnitFile {
    /// Open and verify header, trailer, and footer CRC. `None` on any I/O
    /// error or corruption — the caller degrades to the row store.
    pub fn open(path: &Path) -> Option<ColdUnitFile> {
        let bytes = std::fs::read(path).ok()?;
        Self::from_bytes(bytes)
    }

    /// Verify a cold file image (the testable core of [`Self::open`]).
    pub fn from_bytes(bytes: Vec<u8>) -> Option<ColdUnitFile> {
        if bytes.len() < HEADER + TRAILER {
            return None;
        }
        let mut r = Reader::new(&bytes[..HEADER]);
        if r.u32()? != MAGIC || r.u32()? != VERSION {
            return None;
        }
        let mut t = Reader::new(&bytes[bytes.len() - TRAILER..]);
        let footer_off = t.u64()?;
        if t.u32()? != MAGIC {
            return None;
        }
        let footer = entry_at(&bytes, footer_off)?;
        let meta = footer_from_bytes(footer)?;
        Some(ColdUnitFile { bytes, meta })
    }

    /// Decode one encoded column (CRC-checked entry read + decode).
    pub fn decode_column(&self, ordinal: usize) -> Option<ColumnCu> {
        let off = *self.meta.col_offsets.get(ordinal)?;
        let payload = entry_at(&self.bytes, off)?;
        let mut r = Reader::new(payload);
        let col = ColumnCu::from_bytes(&mut r)?;
        (r.is_done() && col.len() == self.meta.rows).then_some(col)
    }

    /// Evaluate a conjunction in column space, decoding only the columns
    /// the filter touches. Unlike [`crate::Imcu::filter_bitmap`], `None`
    /// here means *corruption* (a column entry failed its CRC) — pruning
    /// is decided separately via [`ColdMeta::prunes`].
    pub fn filter_bitmap(
        &self,
        filter: &crate::predicate::Filter,
    ) -> Option<crate::bitmap::SelBitmap> {
        use crate::bitmap::SelBitmap;
        let rows = self.meta.rows;
        let mut acc: Option<SelBitmap> = None;
        for p in &filter.terms {
            // Same semantics as the hot path: a conjunct on a column the
            // unit does not hold (added by DDL) selects nothing.
            let mut sel = SelBitmap::zeroes(rows);
            if p.ordinal < self.meta.column_count() {
                let col = self.decode_column(p.ordinal)?;
                col.scan_bitmap(p, &mut sel);
            }
            match &mut acc {
                None => acc = Some(sel),
                Some(a) => {
                    a.and_assign(&sel);
                    if a.is_empty() {
                        break;
                    }
                }
            }
        }
        Some(acc.unwrap_or_else(|| SelBitmap::ones(rows)))
    }

    /// The file's loc → rownum map (SMU reconciliation on cold scans).
    pub fn loc_index(&self) -> Option<std::collections::HashMap<RowLoc, u32>> {
        let locs = self.decode_locs()?;
        Some(locs.iter().enumerate().map(|(i, &l)| (l, i as u32)).collect())
    }

    /// Decode the row-location entry.
    pub fn decode_locs(&self) -> Option<Vec<RowLoc>> {
        let payload = entry_at(&self.bytes, self.meta.locs_offset)?;
        let mut r = Reader::new(payload);
        let rows = r.len_u64()?;
        if rows != self.meta.rows {
            return None;
        }
        let mut locs = Vec::with_capacity(rows);
        for _ in 0..rows {
            let dba = Dba(r.u64()?);
            let slot = u16::try_from(r.u32()?).ok()?;
            locs.push(RowLoc { dba, slot });
        }
        r.is_done().then_some(locs)
    }

    /// Full decode back into a hot [`Imcu`] (recall / restart
    /// re-population). Bit-identical in behavior to the evicted unit.
    pub fn into_imcu(&self) -> Option<Imcu> {
        let locs = self.decode_locs()?;
        let columns = (0..self.meta.column_count())
            .map(|ord| self.decode_column(ord))
            .collect::<Option<Vec<_>>>()?;
        Some(Imcu::from_parts(
            self.meta.object,
            self.meta.tenant,
            self.meta.dbas.clone(),
            self.meta.snapshot,
            self.meta.schema_version,
            locs,
            columns,
            self.meta.virtual_names.clone(),
            self.meta.base_arity,
            self.meta.col_aggs.clone(),
        ))
    }
}

/// The CRC-framed entry at `offset`, verified.
fn entry_at(bytes: &[u8], offset: u64) -> Option<&[u8]> {
    let offset = usize::try_from(offset).ok()?;
    if offset < HEADER || offset.checked_add(8)? > bytes.len() {
        return None;
    }
    let mut r = Reader::new(&bytes[offset..offset + 8]);
    let len = r.len_u32()?;
    let crc = r.u32()?;
    let start = offset + 8;
    let end = start.checked_add(len)?;
    if end > bytes.len().saturating_sub(TRAILER) {
        return None;
    }
    let payload = &bytes[start..end];
    (codec::crc32(payload) == crc).then_some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::TxnId;
    use imadg_storage::{Block, ColumnType, Row, RowVersion, Schema, Store, TableSpec, Value};

    fn schema() -> Schema {
        Schema::of(&[("id", ColumnType::Int), ("c", ColumnType::Varchar)])
    }

    fn store_with_rows(n: i64) -> Store {
        let s = Store::new();
        s.create_table(TableSpec {
            id: ObjectId(1),
            name: "t".into(),
            tenant: TenantId::DEFAULT,
            schema: schema(),
            key_ordinal: 0,
            rows_per_block: 128,
        })
        .unwrap();
        s.cache().install(Block::format(Dba(1), ObjectId(1), 128));
        s.segment(ObjectId(1)).unwrap().lock().add_block(Dba(1));
        s.txns().commit(TxnId(1), Scn(5));
        let b = s.cache().get(Dba(1)).unwrap();
        for i in 0..n {
            b.write().chain_mut(i as u16).unwrap().push(RowVersion {
                txn: TxnId(1),
                scn: Scn(3),
                data: Some(Row::new(vec![
                    if i % 5 == 0 { Value::Null } else { Value::Int(i) },
                    Value::str(format!("s{}", i % 3)),
                ])),
            });
        }
        s
    }

    fn built_unit() -> Imcu {
        let s = store_with_rows(40);
        Imcu::build(&s, ObjectId(1), TenantId::DEFAULT, vec![Dba(1)], Scn(5), &schema()).unwrap()
    }

    #[test]
    fn roundtrip_through_bytes() {
        let imcu = built_unit();
        let (bytes, meta) = serialize(&imcu);
        assert_eq!(meta.rows, 40);
        assert_eq!(meta.base_arity, 2);
        assert_eq!(meta.null_counts[0], 8, "every 5th id is NULL");
        let file = ColdUnitFile::from_bytes(bytes).expect("verifies");
        let back = file.into_imcu().expect("decodes");
        assert_eq!(back.rows(), imcu.rows());
        assert_eq!(back.snapshot, imcu.snapshot);
        assert!(!back.is_pending());
        for rn in 0..imcu.rows() as u32 {
            assert_eq!(back.materialize(rn), imcu.materialize(rn));
            assert_eq!(back.loc(rn), imcu.loc(rn));
        }
        assert_eq!(back.column_agg(0), imcu.column_agg(0));
    }

    #[test]
    fn footer_survives_without_column_decode() {
        let (bytes, _) = serialize(&built_unit());
        let file = ColdUnitFile::from_bytes(bytes).unwrap();
        // Min/max pruning data is available before any decode_column call.
        assert!(file.meta.summaries.summary(0).is_some());
        assert_eq!(file.meta.col_aggs[1].non_null, 40);
    }

    #[test]
    fn torn_tail_and_truncated_footer_rejected() {
        let (bytes, _) = serialize(&built_unit());
        // Whole-file truncations at every suffix boundary must be rejected
        // or still verify (never panic).
        for cut in [0, 1, HEADER, HEADER + 3, bytes.len() - TRAILER, bytes.len() - 1] {
            assert!(
                ColdUnitFile::from_bytes(bytes[..cut].to_vec()).is_none(),
                "truncation at {cut} must not verify"
            );
        }
        // A flipped byte inside the footer payload fails its CRC.
        let mut corrupt = bytes.clone();
        let mid = bytes.len() - TRAILER - 4;
        corrupt[mid] ^= 0xFF;
        assert!(ColdUnitFile::from_bytes(corrupt).is_none());
    }

    #[test]
    fn corrupt_column_entry_fails_only_that_column() {
        let (bytes, meta) = serialize(&built_unit());
        let mut corrupt = bytes.clone();
        // Flip a byte inside column 0's payload (offset + frame header).
        let off = usize::try_from(meta.col_offsets[0]).unwrap() + 8 + 2;
        corrupt[off] ^= 0xFF;
        let file = ColdUnitFile::from_bytes(corrupt).expect("footer still verifies");
        assert!(file.decode_column(0).is_none(), "corrupt column rejected");
        assert!(file.decode_column(1).is_some(), "sibling column unaffected");
        assert!(file.into_imcu().is_none(), "full decode degrades");
    }

    #[test]
    fn write_and_open_file() {
        let dir = std::env::temp_dir().join(format!("imadg-coldfmt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let imcu = built_unit();
        let (path, meta, size) = write_cold_file(&dir, &imcu).unwrap();
        assert_eq!(size, std::fs::metadata(&path).unwrap().len());
        let file = ColdUnitFile::open(&path).expect("opens");
        assert_eq!(file.meta.rows, meta.rows);
        assert_eq!(file.into_imcu().unwrap().rows(), 40);
        assert!(ColdUnitFile::open(&dir.join("missing.imcf")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
