//! In-memory storage indexes: per-IMCU, per-column min/max summaries that
//! let the scan engine skip entire IMCUs whose value range cannot satisfy
//! the predicate (paper §II.B, "in-memory storage indexes").

use imadg_storage::Value;

use crate::column::MinMax;
use crate::predicate::{CmpOp, Predicate};

/// Min/max summaries for every column of one IMCU.
#[derive(Debug, Clone, Default)]
pub struct StorageIndex {
    summaries: Vec<MinMax>,
}

impl StorageIndex {
    /// Build from per-column summaries (ordinal-indexed).
    pub fn new(summaries: Vec<MinMax>) -> StorageIndex {
        StorageIndex { summaries }
    }

    /// The summary for `ordinal`, if stored.
    pub fn summary(&self, ordinal: usize) -> Option<&MinMax> {
        self.summaries.get(ordinal)
    }

    /// All per-column summaries, ordinal-indexed (cold footer input).
    pub fn summaries(&self) -> &[MinMax] {
        &self.summaries
    }

    /// Can any row in the unit satisfy `pred`? `true` means the unit must
    /// be scanned; `false` proves it can be skipped.
    pub fn may_match(&self, pred: &Predicate) -> bool {
        let Some(mm) = self.summaries.get(pred.ordinal) else {
            return true; // unknown column (added by DDL): cannot prune
        };
        match (mm, &pred.value) {
            (MinMax::AllNull, _) => false, // NULL matches nothing
            (MinMax::Int(lo, hi), Value::Int(x)) => range_may_match(pred.op, *lo, *hi, *x),
            (MinMax::Str(lo, hi), Value::Str(x)) => {
                range_may_match_ord(pred.op, lo.as_ref(), hi.as_ref(), x.as_ref())
            }
            _ => true, // type mismatch: be conservative
        }
    }
}

fn range_may_match(op: CmpOp, lo: i64, hi: i64, x: i64) -> bool {
    match op {
        CmpOp::Eq => lo <= x && x <= hi,
        CmpOp::Ne => !(lo == x && hi == x),
        CmpOp::Lt => lo < x,
        CmpOp::Le => lo <= x,
        CmpOp::Gt => hi > x,
        CmpOp::Ge => hi >= x,
    }
}

fn range_may_match_ord(op: CmpOp, lo: &str, hi: &str, x: &str) -> bool {
    match op {
        CmpOp::Eq => lo <= x && x <= hi,
        CmpOp::Ne => !(lo == x && hi == x),
        CmpOp::Lt => lo < x,
        CmpOp::Le => lo <= x,
        CmpOp::Gt => hi > x,
        CmpOp::Ge => hi >= x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_storage::{ColumnType, Schema};

    fn idx() -> StorageIndex {
        StorageIndex::new(vec![
            MinMax::Int(10, 20),
            MinMax::Str("b".into(), "d".into()),
            MinMax::AllNull,
        ])
    }

    fn p(op: CmpOp, v: Value, ord: usize) -> Predicate {
        let s = Schema::of(&[
            ("n", ColumnType::Int),
            ("c", ColumnType::Varchar),
            ("z", ColumnType::Int),
        ]);
        let name = ["n", "c", "z"][ord];
        Predicate::new(&s, name, op, v).unwrap()
    }

    #[test]
    fn int_pruning() {
        let i = idx();
        assert!(i.may_match(&p(CmpOp::Eq, Value::Int(15), 0)));
        assert!(!i.may_match(&p(CmpOp::Eq, Value::Int(25), 0)));
        assert!(!i.may_match(&p(CmpOp::Lt, Value::Int(10), 0)));
        assert!(i.may_match(&p(CmpOp::Le, Value::Int(10), 0)));
        assert!(!i.may_match(&p(CmpOp::Gt, Value::Int(20), 0)));
        assert!(i.may_match(&p(CmpOp::Ge, Value::Int(20), 0)));
    }

    #[test]
    fn ne_pruning_only_when_constant() {
        let single = StorageIndex::new(vec![MinMax::Int(7, 7)]);
        let s = Schema::of(&[("n", ColumnType::Int)]);
        let ne7 = Predicate::new(&s, "n", CmpOp::Ne, Value::Int(7)).unwrap();
        let ne8 = Predicate::new(&s, "n", CmpOp::Ne, Value::Int(8)).unwrap();
        assert!(!single.may_match(&ne7));
        assert!(single.may_match(&ne8));
    }

    #[test]
    fn string_pruning() {
        let i = idx();
        assert!(i.may_match(&p(CmpOp::Eq, Value::str("c"), 1)));
        assert!(!i.may_match(&p(CmpOp::Eq, Value::str("x"), 1)));
        assert!(!i.may_match(&p(CmpOp::Gt, Value::str("d"), 1)));
    }

    #[test]
    fn all_null_prunes_everything() {
        let i = idx();
        assert!(!i.may_match(&p(CmpOp::Ne, Value::Int(0), 2)));
    }

    #[test]
    fn unknown_column_never_prunes() {
        let i = StorageIndex::new(vec![]);
        assert!(i.may_match(&p(CmpOp::Eq, Value::Int(1), 0)));
    }
}
