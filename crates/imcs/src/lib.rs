//! `imadg-imcs`: the In-Memory Column Store (dual-format architecture).
//!
//! Read-only, compressed In-Memory Columnar Units (IMCUs) with min/max
//! storage indexes; Snapshot Metadata Units (SMUs) tracking transactional
//! staleness; online population/repopulation with consistency-point
//! snapshot capture; and the scan engine that reconciles columnar data with
//! the row-store (paper §II.B, §III.A).

pub mod aggregate;
pub mod bitmap;
pub mod coldstore;
pub mod column;
pub mod encoding;
pub mod expression;
pub mod imcs_store;
pub mod imcu;
pub mod parallel;
pub mod population;
pub mod predicate;
pub mod scalar;
pub mod scan;
pub mod smu;
pub mod storage_index;

pub use aggregate::{
    scan_aggregate, scan_aggregate_parallel, scan_aggregate_profiled, AggregateResult,
    AggregateStats, Aggregates,
};
pub use bitmap::SelBitmap;
pub use coldstore::{restore_cold_tier, ColdTier, ColdUnit, ColdUnitFile, TierReport};
pub use column::{ColumnCu, MinMax};
pub use expression::{Expr, ImExpression};
pub use imcs_store::{ImcsStore, ImcuHandle, ObjectImcs};
pub use imcu::{ColAgg, Imcu};
pub use population::{PopulationEngine, PopulationReport, SnapshotSource};
pub use predicate::{CmpOp, Filter, Predicate};
pub use scan::{
    scan, scan_cluster, scan_cluster_parallel, scan_cluster_profiled, scan_expression,
    scan_expression_parallel, scan_expression_profiled, scan_parallel, ExprPredicate, ScanResult,
    ScanStats,
};
pub use smu::{Smu, SmuView};
pub use storage_index::StorageIndex;
