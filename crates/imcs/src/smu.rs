//! Snapshot Metadata Units (SMUs).
//!
//! "A Snapshot Metadata Unit accompanies each IMCU and tracks the validity
//! of the data populated in its corresponding IMCU" (paper §II.B). The
//! invalidation-flush component marks rows stale as the QuerySCN advances;
//! the scan engine reconciles IMCU data against the SMU and fetches stale
//! rows from the row-store instead.
//!
//! Invalidations are keyed by *physical location* and carry the commit SCN
//! of the invalidating transaction. Keeping the SCN makes repopulation
//! carry-over exact: when a unit is rebuilt at snapshot `S`, entries with
//! commit SCN ≤ `S` are absorbed by the rebuild and dropped; later entries
//! transfer to the fresh SMU.

use std::collections::HashMap;

use imadg_common::Scn;
use imadg_storage::RowLoc;
use parking_lot::RwLock;

/// Mutable validity state for one IMCU.
#[derive(Debug, Default)]
pub struct Smu {
    inner: RwLock<SmuState>,
}

#[derive(Debug, Default, Clone)]
struct SmuState {
    /// Rows present in the IMCU whose current version is newer than the
    /// unit's snapshot: location → earliest invalidating commit SCN.
    invalid: HashMap<RowLoc, Scn>,
    /// Rows inserted into covered blocks *after* the unit's snapshot (the
    /// unit has no rownum for them): location → inserting commit SCN.
    inserted: HashMap<RowLoc, Scn>,
    /// Coarse invalidation: the whole unit is unusable (§III.E).
    all_invalid: bool,
}

/// A consistent read-only view of an SMU, taken once per scan.
#[derive(Debug, Clone)]
pub struct SmuView {
    state: SmuState,
}

/// Borrowed, lock-held SMU view (no cloning).
pub struct SmuReadGuard<'a> {
    guard: parking_lot::RwLockReadGuard<'a, SmuState>,
}

impl SmuReadGuard<'_> {
    /// Is the whole unit invalid?
    pub fn all_invalid(&self) -> bool {
        self.guard.all_invalid
    }

    /// Is this IMCU row stale? (see [`SmuView::is_invalid`])
    pub fn is_invalid(&self, loc: RowLoc) -> bool {
        self.guard.all_invalid
            || self.guard.invalid.contains_key(&loc)
            || self.guard.inserted.contains_key(&loc)
    }

    /// Copy out the fallback locations (invalidated rows + post-snapshot
    /// inserts).
    pub fn collect_fallback(&self, out: &mut Vec<RowLoc>) {
        out.extend(self.guard.invalid.keys().copied());
        out.extend(self.guard.inserted.keys().copied());
    }

    /// Convert the validity state to mask form for the bitmap scan path:
    /// a bitmap over `rows` with a 1 for every row still served from the
    /// unit. Returns `None` when every row is valid — the common case —
    /// so fully-valid units skip the AND entirely. Stale locations are
    /// translated to row numbers through `rownum` (post-snapshot inserts
    /// have no rownum and are simply not present in the mask domain).
    pub fn validity_mask(
        &self,
        rows: usize,
        rownum: impl Fn(RowLoc) -> Option<u32>,
    ) -> Option<crate::bitmap::SelBitmap> {
        if self.fallback_count() == 0 {
            return None;
        }
        let mut mask = crate::bitmap::SelBitmap::ones(rows);
        for loc in self.guard.invalid.keys().chain(self.guard.inserted.keys()) {
            if let Some(rn) = rownum(*loc) {
                mask.clear(rn as usize);
            }
        }
        Some(mask)
    }

    /// Total fallback locations.
    pub fn fallback_count(&self) -> usize {
        self.guard.invalid.len() + self.guard.inserted.len()
    }
}

impl SmuView {
    /// Is the whole unit invalid?
    pub fn all_invalid(&self) -> bool {
        self.state.all_invalid
    }

    /// Is this IMCU row stale?
    ///
    /// Checks the insert map too: after a repopulation carry-over, a
    /// location first seen as a post-snapshot insert may now be present in
    /// the rebuilt unit while still carrying a newer change — it must be
    /// served from the row-store, not from the unit.
    pub fn is_invalid(&self, loc: RowLoc) -> bool {
        self.state.all_invalid
            || self.state.invalid.contains_key(&loc)
            || self.state.inserted.contains_key(&loc)
    }

    /// Locations needing row-store fallback: every invalidated row plus
    /// every post-snapshot insert into covered blocks.
    pub fn fallback_locs(&self) -> impl Iterator<Item = RowLoc> + '_ {
        self.state.invalid.keys().chain(self.state.inserted.keys()).copied()
    }

    /// Number of invalidated IMCU rows.
    pub fn invalid_count(&self) -> usize {
        self.state.invalid.len()
    }

    /// Number of tracked post-snapshot inserts.
    pub fn inserted_count(&self) -> usize {
        self.state.inserted.len()
    }
}

impl Smu {
    /// Fresh, fully-valid SMU.
    pub fn new() -> Smu {
        Smu::default()
    }

    /// Mark an IMCU row stale as of `commit_scn` (invalidation flush).
    ///
    /// Repeated invalidations keep the *latest* commit SCN: a rebuild at
    /// snapshot `S` absorbs changes committed at or before `S`, so an entry
    /// must survive carry-over iff its newest invalidating commit is > `S`.
    pub fn invalidate_row(&self, loc: RowLoc, commit_scn: Scn) {
        let mut s = self.inner.write();
        let e = s.invalid.entry(loc).or_insert(commit_scn);
        *e = (*e).max(commit_scn);
    }

    /// Record a post-snapshot insert into a covered block. Later changes to
    /// the same inserted row keep the latest commit SCN (same carry-over
    /// rule as `invalidate_row`).
    pub fn record_insert(&self, loc: RowLoc, commit_scn: Scn) {
        let mut s = self.inner.write();
        let e = s.inserted.entry(loc).or_insert(commit_scn);
        *e = (*e).max(commit_scn);
    }

    /// Coarse invalidation: disable the whole unit (§III.E).
    pub fn mark_all_invalid(&self) {
        self.inner.write().all_invalid = true;
    }

    /// Snapshot the state for one scan (clones the maps — use
    /// [`Smu::read`] on hot paths).
    pub fn view(&self) -> SmuView {
        SmuView { state: self.inner.read().clone() }
    }

    /// Lock-held view for the scan hot path: no map cloning. The guard
    /// blocks invalidation flushes for its (short) lifetime, mirroring the
    /// SMU latch scans and flushes share in the paper's design (§II.B:
    /// "SMUs provide concurrency control").
    pub fn read(&self) -> SmuReadGuard<'_> {
        SmuReadGuard { guard: self.inner.read() }
    }

    /// Fraction of the unit's `rows` that are stale (repopulation
    /// heuristic input). Post-snapshot inserts count toward staleness: they
    /// force row-store fallbacks just like invalid rows.
    pub fn staleness(&self, rows: usize) -> f64 {
        let s = self.inner.read();
        if s.all_invalid {
            return 1.0;
        }
        if rows == 0 {
            // An empty unit with tracked inserts is pure fallback: fully stale.
            return if s.inserted.is_empty() { 0.0 } else { 1.0 };
        }
        (s.invalid.len() + s.inserted.len()) as f64 / rows as f64
    }

    /// Build the successor SMU for a unit rebuilt at snapshot `rebuild`:
    /// keep only entries whose commit SCN is newer than the rebuild
    /// snapshot (older ones are absorbed into the new unit's data).
    pub fn carry_over(&self, rebuild: Scn) -> Smu {
        let s = self.inner.read();
        let mut fresh = SmuState::default();
        for (&loc, &scn) in &s.invalid {
            if scn > rebuild {
                fresh.invalid.insert(loc, scn);
            }
        }
        for (&loc, &scn) in &s.inserted {
            if scn > rebuild {
                fresh.inserted.insert(loc, scn);
            }
        }
        Smu { inner: RwLock::new(fresh) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::Dba;

    fn loc(d: u64, s: u16) -> RowLoc {
        RowLoc { dba: Dba(d), slot: s }
    }

    #[test]
    fn invalidate_and_view() {
        let smu = Smu::new();
        smu.invalidate_row(loc(1, 0), Scn(10));
        let v = smu.view();
        assert!(v.is_invalid(loc(1, 0)));
        assert!(!v.is_invalid(loc(1, 1)));
        assert_eq!(v.invalid_count(), 1);
        assert_eq!(v.fallback_locs().count(), 1);
    }

    #[test]
    fn repeated_invalidation_keeps_latest_scn() {
        let smu = Smu::new();
        smu.invalidate_row(loc(1, 0), Scn(10));
        smu.invalidate_row(loc(1, 0), Scn(20));
        // A rebuild at 15 absorbs the SCN-10 change but NOT the SCN-20 one:
        // the entry must survive carry-over.
        let fresh = smu.carry_over(Scn(15));
        assert_eq!(fresh.view().invalid_count(), 1);
        // A rebuild at 25 absorbs both.
        assert_eq!(smu.carry_over(Scn(25)).view().invalid_count(), 0);
    }

    #[test]
    fn inserts_tracked_and_treated_invalid() {
        let smu = Smu::new();
        smu.record_insert(loc(2, 3), Scn(8));
        let v = smu.view();
        assert!(
            v.is_invalid(loc(2, 3)),
            "an inserted loc must never be served from a unit that holds it (carry-over case)"
        );
        assert_eq!(v.inserted_count(), 1);
        assert_eq!(v.invalid_count(), 0);
        assert_eq!(v.fallback_locs().count(), 1);
    }

    #[test]
    fn staleness_fraction() {
        let smu = Smu::new();
        assert_eq!(smu.staleness(100), 0.0);
        for i in 0..10 {
            smu.invalidate_row(loc(1, i), Scn(5));
        }
        smu.record_insert(loc(9, 0), Scn(6));
        assert!((smu.staleness(100) - 0.11).abs() < 1e-9);
        smu.mark_all_invalid();
        assert_eq!(smu.staleness(100), 1.0);
    }

    #[test]
    fn staleness_of_empty_unit() {
        let smu = Smu::new();
        assert_eq!(smu.staleness(0), 0.0);
        smu.record_insert(loc(1, 0), Scn(5));
        assert_eq!(smu.staleness(0), 1.0, "inserts force fallback on an empty unit");
    }

    #[test]
    fn carry_over_splits_on_rebuild_scn() {
        let smu = Smu::new();
        smu.invalidate_row(loc(1, 0), Scn(10));
        smu.invalidate_row(loc(1, 1), Scn(30));
        smu.record_insert(loc(1, 2), Scn(10));
        smu.record_insert(loc(1, 3), Scn(30));
        let fresh = smu.carry_over(Scn(20));
        let v = fresh.view();
        assert!(!v.is_invalid(loc(1, 0)), "absorbed by rebuild");
        assert!(v.is_invalid(loc(1, 1)), "newer than rebuild: carried");
        assert_eq!(v.inserted_count(), 1);
        assert!(!v.all_invalid());
    }

    #[test]
    fn validity_mask_forms() {
        let smu = Smu::new();
        assert!(smu.read().validity_mask(8, |_| None).is_none(), "fully valid → no mask");
        smu.invalidate_row(loc(1, 2), Scn(5));
        smu.record_insert(loc(1, 9), Scn(6));
        let rownum = |l: RowLoc| if l.slot < 8 { Some(l.slot as u32) } else { None };
        let mask = smu.read().validity_mask(8, rownum).unwrap();
        assert!(!mask.get(2), "invalidated row cleared");
        assert_eq!(mask.count(), 7, "insert without rownum leaves the mask alone");
    }

    #[test]
    fn all_invalid_dominates() {
        let smu = Smu::new();
        smu.mark_all_invalid();
        let v = smu.view();
        assert!(v.all_invalid());
        assert!(v.is_invalid(loc(42, 42)));
    }
}
