//! Aggregation push-down (paper §V: "novel formats and techniques used by
//! DBIM like in-memory storage indexes, aggregation push-down are extended
//! seamlessly to ADG").
//!
//! `scan_aggregate` computes COUNT / SUM / MIN / MAX of one column over the
//! rows matching a filter, without materializing row images:
//!
//! * a fully-valid unit with no filter is answered **O(1)** from the unit's
//!   pre-computed column aggregates and its storage index;
//! * filtered units read only the aggregated column for matching row ids;
//! * stale rows and uncovered blocks aggregate over row images fetched via
//!   Consistent Read — the same reconciliation discipline as row scans.

use std::sync::Arc;
use std::time::Instant;

use imadg_common::{Dba, ObjectId, QueryProfile, Result, Scn, UnitTiming};
use imadg_storage::{Store, Value};

use crate::coldstore::ColdUnit;
use crate::column::MinMax;
use crate::imcs_store::{ImcsStore, ImcuHandle, ObjectImcs};
use crate::parallel::run_indexed;
use crate::predicate::Filter;
use crate::smu::SmuReadGuard;

/// Running aggregates over one column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregates {
    /// Rows matching the filter (COUNT(*)).
    pub count: u64,
    /// Non-null values of the aggregated column among matching rows.
    pub non_null: u64,
    /// SUM over non-null integer values.
    pub sum: i128,
    /// MIN over non-null values.
    pub min: Option<Value>,
    /// MAX over non-null values.
    pub max: Option<Value>,
}

impl Aggregates {
    /// Fold one column value from a matching row.
    pub fn add(&mut self, v: &Value) {
        self.count += 1;
        match v {
            Value::Null => return,
            Value::Int(x) => self.sum += i128::from(*x),
            Value::Str(_) => {}
        }
        self.non_null += 1;
        self.merge_min(v);
        self.merge_max(v);
    }

    /// Lower `min` to `v` if smaller (masked-kernel and merge entry point).
    pub fn merge_min(&mut self, v: &Value) {
        if self.min.as_ref().is_none_or(|m| value_lt(v, m)) {
            self.min = Some(v.clone());
        }
    }

    /// Raise `max` to `v` if larger (masked-kernel and merge entry point).
    pub fn merge_max(&mut self, v: &Value) {
        if self.max.as_ref().is_none_or(|m| value_lt(m, v)) {
            self.max = Some(v.clone());
        }
    }

    /// Fold another partial aggregate in (parallel per-unit reduce).
    pub fn merge(&mut self, other: &Aggregates) {
        self.count += other.count;
        self.non_null += other.non_null;
        self.sum += other.sum;
        if let Some(m) = &other.min {
            self.merge_min(m);
        }
        if let Some(m) = &other.max {
            self.merge_max(m);
        }
    }

    /// AVG over non-null values.
    pub fn average(&self) -> Option<f64> {
        if self.non_null == 0 {
            None
        } else {
            Some(self.sum as f64 / self.non_null as f64)
        }
    }
}

fn value_lt(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x < y,
        (Value::Str(x), Value::Str(y)) => x.as_ref() < y.as_ref(),
        _ => false,
    }
}

/// Provenance counters for an aggregate scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateStats {
    /// Units answered entirely from pre-computed metadata (O(1)).
    pub pushdown_units: usize,
    /// Units whose columns were scanned.
    pub scanned_units: usize,
    /// Units served from the row store (pending / coarse-invalid).
    pub bypassed_units: usize,
    /// Rows aggregated via row-store fallback.
    pub fallback_rows: usize,
    /// Cold units answered from footer metadata alone (min/max prune or
    /// footer aggregate pushdown) — zero file I/O.
    pub cold_pruned_units: usize,
    /// Cold units whose file was opened and aggregated on disk.
    pub cold_read_units: usize,
    /// Cold files that failed to open or decode; the unit degraded to the
    /// row-store bypass.
    pub cold_read_errors: usize,
    /// Per-unit aggregate tasks issued to the worker pool (a function of
    /// the unit count only — identical at every parallel degree).
    pub parallel_tasks: usize,
}

impl AggregateStats {
    /// Fold another unit's counters in (parallel per-unit reduce).
    pub fn absorb(&mut self, other: &AggregateStats) {
        self.pushdown_units += other.pushdown_units;
        self.scanned_units += other.scanned_units;
        self.bypassed_units += other.bypassed_units;
        self.fallback_rows += other.fallback_rows;
        self.cold_pruned_units += other.cold_pruned_units;
        self.cold_read_units += other.cold_read_units;
        self.cold_read_errors += other.cold_read_errors;
        self.parallel_tasks += other.parallel_tasks;
    }
}

/// A completed aggregate scan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggregateResult {
    /// The aggregates.
    pub aggs: Aggregates,
    /// Provenance counters.
    pub stats: AggregateStats,
    /// Phase timings, populated only on [`scan_aggregate_profiled`].
    pub profile: Option<QueryProfile>,
}

/// Microseconds elapsed since `t` (profiler granularity).
fn micros(t: Instant) -> u64 {
    t.elapsed().as_micros() as u64
}

/// Aggregate one unit: bypass to the row-store when the columnar data is
/// unusable; answer O(1) from unit metadata when possible; otherwise fold
/// the selection bitmap straight through the encoded column — no row ever
/// materializes on the columnar path.
fn aggregate_unit(
    handle: &ImcuHandle,
    store: &Store,
    filter: &Filter,
    ordinal: usize,
    snapshot: Scn,
    unit: usize,
) -> Result<(AggregateResult, Vec<Dba>, UnitTiming)> {
    let started = Instant::now();
    handle.note_scan();
    let mut timing = UnitTiming { unit, ..Default::default() };
    let (imcu, smu) = handle.pair();
    let covered = imcu.dbas.clone();
    let mut result = AggregateResult::default();
    let view = smu.read();

    // Cold tier: footer aggregate pushdown / min-max pruning without I/O
    // where possible, on-disk column aggregation otherwise. Any decode
    // failure falls through to the pending bypass below.
    if imcu.is_pending() && !view.all_invalid() && snapshot >= imcu.snapshot {
        if let Some(cold) = handle.cold() {
            if cold.meta.snapshot == imcu.snapshot
                && aggregate_unit_cold(
                    &cold,
                    store,
                    filter,
                    ordinal,
                    snapshot,
                    &view,
                    &mut result,
                    &mut timing,
                )?
            {
                drop(view);
                timing.total_us = micros(started);
                return Ok((result, covered, timing));
            }
            result.stats.cold_read_errors += 1;
        }
    }

    if imcu.is_pending() || view.all_invalid() || snapshot < imcu.snapshot {
        drop(view);
        result.stats.bypassed_units = 1;
        timing.bypassed = true;
        let t = Instant::now();
        store.scan_blocks(&imcu.dbas, snapshot, |_, row| {
            if filter.eval_row(row) {
                result.aggs.add(row.get(ordinal));
                result.stats.fallback_rows += 1;
            }
        })?;
        timing.fallback_us = micros(t);
        timing.total_us = micros(started);
        return Ok((result, covered, timing));
    }

    // O(1) push-down: unfiltered aggregate over a unit with no stale
    // rows is fully answered by unit metadata.
    let t = Instant::now();
    let mut pushed_down = false;
    if filter.terms.is_empty() && view.fallback_count() == 0 {
        if let Some(agg) = imcu.column_agg(ordinal) {
            result.stats.pushdown_units = 1;
            result.aggs.count += imcu.rows() as u64;
            result.aggs.non_null += agg.non_null;
            result.aggs.sum += agg.sum;
            if agg.non_null > 0 {
                match imcu.storage_index.summary(ordinal) {
                    Some(MinMax::Int(lo, hi)) => {
                        result.aggs.merge_min(&Value::Int(*lo));
                        result.aggs.merge_max(&Value::Int(*hi));
                    }
                    Some(MinMax::Str(lo, hi)) => {
                        result.aggs.merge_min(&Value::Str(lo.clone()));
                        result.aggs.merge_max(&Value::Str(hi.clone()));
                    }
                    _ => {}
                }
            }
            pushed_down = true;
        }
    }

    // Column path: evaluate every conjunct in column space, AND the SMU
    // validity mask, and fold the aggregated column under the final
    // bitmap — the aggregated column is the only data actually decoded.
    if !pushed_down {
        result.stats.scanned_units = 1;
        match imcu.filter_bitmap(filter) {
            Some(mut sel) => {
                timing.kernel_us += micros(t);
                let t = Instant::now();
                if let Some(mask) = view.validity_mask(imcu.rows(), |l| imcu.rownum(l)) {
                    sel.and_assign(&mask);
                }
                timing.merge_us = micros(t);
                let t = Instant::now();
                imcu.aggregate_masked(ordinal, &sel, &mut result.aggs);
                timing.kernel_us += micros(t);
            }
            // Storage index excluded the whole unit.
            None => {
                timing.pruned = true;
                timing.kernel_us += micros(t);
            }
        }
    } else {
        timing.kernel_us += micros(t);
    }

    let t = Instant::now();
    let mut fallback: Vec<imadg_storage::RowLoc> = Vec::with_capacity(view.fallback_count());
    view.collect_fallback(&mut fallback);
    drop(view);
    timing.merge_us += micros(t);
    let t = Instant::now();
    store.fetch_rows_batched(&mut fallback, snapshot, |_, row| {
        if filter.eval_row(row) {
            result.aggs.add(row.get(ordinal));
            result.stats.fallback_rows += 1;
        }
    })?;
    timing.fallback_us += micros(t);
    timing.total_us = micros(started);
    Ok((result, covered, timing))
}

/// Aggregate one cold unit. Returns `Ok(false)` — with `result` untouched —
/// on any open/decode failure so the caller degrades to the bypass.
///
/// Three tiers of work avoidance, cheapest first: an unfiltered aggregate
/// over a journal-free unit is answered O(1) from the footer's per-column
/// aggregates; a filter the footer min/max excludes skips the file; only
/// the rest opens the file — and decodes just the filter columns plus the
/// aggregated column.
#[allow(clippy::too_many_arguments)]
fn aggregate_unit_cold(
    cold: &ColdUnit,
    store: &Store,
    filter: &Filter,
    ordinal: usize,
    snapshot: Scn,
    view: &SmuReadGuard<'_>,
    result: &mut AggregateResult,
    timing: &mut UnitTiming,
) -> Result<bool> {
    let t = Instant::now();
    let clean = filter.terms.is_empty() && view.fallback_count() == 0;
    if clean && ordinal < cold.meta.col_aggs.len() {
        // O(1) pushdown straight off the footer: COUNT / SUM / non-null
        // from the serialized per-column aggregates, MIN / MAX from the
        // persisted min/max summaries. Zero file I/O.
        let agg = cold.meta.col_aggs[ordinal];
        result.stats.pushdown_units = 1;
        result.stats.cold_pruned_units = 1;
        result.aggs.count += cold.meta.rows as u64;
        result.aggs.non_null += agg.non_null;
        result.aggs.sum += agg.sum;
        if agg.non_null > 0 {
            match cold.meta.summaries.summary(ordinal) {
                Some(MinMax::Int(lo, hi)) => {
                    result.aggs.merge_min(&Value::Int(*lo));
                    result.aggs.merge_max(&Value::Int(*hi));
                }
                Some(MinMax::Str(lo, hi)) => {
                    result.aggs.merge_min(&Value::Str(lo.clone()));
                    result.aggs.merge_max(&Value::Str(hi.clone()));
                }
                _ => {}
            }
        }
        timing.cold_pruned = true;
        timing.kernel_us = micros(t);
    } else if cold.meta.prunes(filter) {
        // Footer min/max excludes every serialized row: zero file I/O;
        // journaled rows still aggregate via the fallback pass below.
        result.stats.scanned_units = 1;
        result.stats.cold_pruned_units = 1;
        timing.pruned = true;
        timing.cold_pruned = true;
        timing.kernel_us = micros(t);
    } else {
        let Some(file) = crate::coldstore::ColdUnitFile::open(&cold.path) else {
            return Ok(false);
        };
        let Some(mut sel) = file.filter_bitmap(filter) else { return Ok(false) };
        if view.fallback_count() > 0 {
            let Some(index) = file.loc_index() else { return Ok(false) };
            if let Some(mask) = view.validity_mask(file.meta.rows, |l| index.get(&l).copied()) {
                sel.and_assign(&mask);
            }
        }
        // Aggregate straight off the encoded column — the aggregated
        // column is the only data decoded beyond the filter columns. All
        // decodes complete before `result` is touched.
        let mut aggs = Aggregates::default();
        if ordinal < cold.meta.column_count() {
            let Some(col) = file.decode_column(ordinal) else { return Ok(false) };
            col.aggregate_masked(&sel, &mut aggs);
        } else {
            aggs.count += sel.count() as u64;
        }
        cold.note_read();
        result.stats.scanned_units = 1;
        result.stats.cold_read_units = 1;
        result.aggs.merge(&aggs);
        timing.cold_read = true;
        timing.kernel_us = micros(t);
    }

    // SMU reconciliation — identical to the hot path.
    let t = Instant::now();
    let mut fallback: Vec<imadg_storage::RowLoc> = Vec::with_capacity(view.fallback_count());
    view.collect_fallback(&mut fallback);
    timing.merge_us += micros(t);
    let t = Instant::now();
    store.fetch_rows_batched(&mut fallback, snapshot, |_, row| {
        if filter.eval_row(row) {
            result.aggs.add(row.get(ordinal));
            result.stats.fallback_rows += 1;
        }
    })?;
    timing.fallback_us += micros(t);
    Ok(true)
}

/// Aggregate column `ordinal` of `object` over rows matching `filter`, at
/// `snapshot`. Returns `Ok(None)` when the object has no column-store
/// presence (the caller falls back to a row scan).
pub fn scan_aggregate(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    ordinal: usize,
    snapshot: Scn,
) -> Result<Option<AggregateResult>> {
    scan_aggregate_parallel(stores, store, object, filter, ordinal, snapshot, 1)
}

/// [`scan_aggregate`] with an explicit parallel degree (`<= 1` = serial):
/// per-unit partial aggregates computed across the worker pool and merged
/// in unit order.
pub fn scan_aggregate_parallel(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    ordinal: usize,
    snapshot: Scn,
    degree: usize,
) -> Result<Option<AggregateResult>> {
    aggregate_units(stores, store, object, filter, ordinal, snapshot, degree, false)
}

/// [`scan_aggregate_parallel`] with per-phase timing: the result's
/// `profile` carries the pruning / kernel / journal-merge / fallback /
/// uncovered split and one [`UnitTiming`] per parallel task.
pub fn scan_aggregate_profiled(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    ordinal: usize,
    snapshot: Scn,
    degree: usize,
) -> Result<Option<AggregateResult>> {
    aggregate_units(stores, store, object, filter, ordinal, snapshot, degree, true)
}

#[allow(clippy::too_many_arguments)]
fn aggregate_units(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    ordinal: usize,
    snapshot: Scn,
    degree: usize,
    profile: bool,
) -> Result<Option<AggregateResult>> {
    let entries: Vec<Arc<ObjectImcs>> = stores.iter().filter_map(|s| s.object(object)).collect();
    if entries.is_empty() {
        return Ok(None);
    }
    let handles: Vec<Arc<ImcuHandle>> = entries.iter().flat_map(|e| e.handles()).collect();
    let partials = run_indexed(degree, handles.len(), |i| {
        aggregate_unit(handles[i].as_ref(), store, filter, ordinal, snapshot, i)
    });

    let mut result = AggregateResult::default();
    let mut prof = profile.then(QueryProfile::default);
    let mut covered: Vec<Dba> = Vec::new();
    for partial in partials {
        let (p, dbas, timing) = partial?;
        if let Some(prof) = prof.as_mut() {
            prof.absorb_task(timing);
        }
        result.aggs.merge(&p.aggs);
        result.stats.absorb(&p.stats);
        covered.extend(dbas);
    }
    result.stats.parallel_tasks = handles.len();

    covered.sort_unstable();
    covered.dedup();
    let t = Instant::now();
    let uncovered: Vec<Dba> = store
        .block_dbas(object)?
        .into_iter()
        .filter(|d| covered.binary_search(d).is_err())
        .collect();
    if !uncovered.is_empty() {
        store.scan_blocks(&uncovered, snapshot, |_, row| {
            if filter.eval_row(row) {
                result.aggs.add(row.get(ordinal));
                result.stats.fallback_rows += 1;
            }
        })?;
    }
    if let Some(prof) = prof.as_mut() {
        prof.uncovered_us = micros(t);
        prof.parallel_degree = degree.max(1);
    }
    result.profile = prof;
    Ok(Some(result))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_semantics() {
        let mut a = Aggregates::default();
        a.add(&Value::Int(5));
        a.add(&Value::Null);
        a.add(&Value::Int(-2));
        assert_eq!(a.count, 3, "COUNT(*) counts null rows");
        assert_eq!(a.non_null, 2);
        assert_eq!(a.sum, 3);
        assert_eq!(a.min, Some(Value::Int(-2)));
        assert_eq!(a.max, Some(Value::Int(5)));
        assert_eq!(a.average(), Some(1.5));
    }

    #[test]
    fn string_min_max() {
        let mut a = Aggregates::default();
        a.add(&Value::str("m"));
        a.add(&Value::str("a"));
        a.add(&Value::str("z"));
        assert_eq!(a.min, Some(Value::str("a")));
        assert_eq!(a.max, Some(Value::str("z")));
        assert_eq!(a.sum, 0);
    }

    #[test]
    fn empty_average_is_none() {
        let a = Aggregates::default();
        assert_eq!(a.average(), None);
    }
}
