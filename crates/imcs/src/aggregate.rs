//! Aggregation push-down (paper §V: "novel formats and techniques used by
//! DBIM like in-memory storage indexes, aggregation push-down are extended
//! seamlessly to ADG").
//!
//! `scan_aggregate` computes COUNT / SUM / MIN / MAX of one column over the
//! rows matching a filter, without materializing row images:
//!
//! * a fully-valid unit with no filter is answered **O(1)** from the unit's
//!   pre-computed column aggregates and its storage index;
//! * filtered units read only the aggregated column for matching row ids;
//! * stale rows and uncovered blocks aggregate over row images fetched via
//!   Consistent Read — the same reconciliation discipline as row scans.

use std::collections::HashSet;
use std::sync::Arc;

use imadg_common::{ObjectId, Result, Scn};
use imadg_storage::{Row, Store, Value};

use crate::column::MinMax;
use crate::imcs_store::{ImcsStore, ObjectImcs};
use crate::predicate::Filter;

/// Running aggregates over one column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregates {
    /// Rows matching the filter (COUNT(*)).
    pub count: u64,
    /// Non-null values of the aggregated column among matching rows.
    pub non_null: u64,
    /// SUM over non-null integer values.
    pub sum: i128,
    /// MIN over non-null values.
    pub min: Option<Value>,
    /// MAX over non-null values.
    pub max: Option<Value>,
}

impl Aggregates {
    /// Fold one column value from a matching row.
    pub fn add(&mut self, v: &Value) {
        self.count += 1;
        match v {
            Value::Null => return,
            Value::Int(x) => self.sum += i128::from(*x),
            Value::Str(_) => {}
        }
        self.non_null += 1;
        self.merge_min(v);
        self.merge_max(v);
    }

    fn merge_min(&mut self, v: &Value) {
        if self.min.as_ref().is_none_or(|m| value_lt(v, m)) {
            self.min = Some(v.clone());
        }
    }

    fn merge_max(&mut self, v: &Value) {
        if self.max.as_ref().is_none_or(|m| value_lt(m, v)) {
            self.max = Some(v.clone());
        }
    }

    /// AVG over non-null values.
    pub fn average(&self) -> Option<f64> {
        if self.non_null == 0 {
            None
        } else {
            Some(self.sum as f64 / self.non_null as f64)
        }
    }
}

fn value_lt(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x < y,
        (Value::Str(x), Value::Str(y)) => x.as_ref() < y.as_ref(),
        _ => false,
    }
}

/// Provenance counters for an aggregate scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateStats {
    /// Units answered entirely from pre-computed metadata (O(1)).
    pub pushdown_units: usize,
    /// Units whose columns were scanned.
    pub scanned_units: usize,
    /// Units served from the row store (pending / coarse-invalid).
    pub bypassed_units: usize,
    /// Rows aggregated via row-store fallback.
    pub fallback_rows: usize,
}

/// A completed aggregate scan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggregateResult {
    /// The aggregates.
    pub aggs: Aggregates,
    /// Provenance counters.
    pub stats: AggregateStats,
}

/// Aggregate column `ordinal` of `object` over rows matching `filter`, at
/// `snapshot`. Returns `Ok(None)` when the object has no column-store
/// presence (the caller falls back to a row scan).
pub fn scan_aggregate(
    stores: &[Arc<ImcsStore>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    ordinal: usize,
    snapshot: Scn,
) -> Result<Option<AggregateResult>> {
    let entries: Vec<Arc<ObjectImcs>> = stores.iter().filter_map(|s| s.object(object)).collect();
    if entries.is_empty() {
        return Ok(None);
    }
    let mut result = AggregateResult::default();
    let mut covered: HashSet<imadg_common::Dba> = HashSet::new();
    let add_row = |result: &mut AggregateResult, row: &Row| {
        result.aggs.add(row.get(ordinal));
    };

    for handle in entries.iter().flat_map(|e| e.handles()) {
        let (imcu, smu) = handle.pair();
        covered.extend(imcu.dbas.iter().copied());
        let view = smu.read();

        if imcu.is_pending() || view.all_invalid() || snapshot < imcu.snapshot {
            result.stats.bypassed_units += 1;
            store.scan_blocks(&imcu.dbas, snapshot, |_, row| {
                if filter.eval_row(row) {
                    add_row(&mut result, row);
                    result.stats.fallback_rows += 1;
                }
            })?;
            continue;
        }

        // O(1) push-down: unfiltered aggregate over a unit with no stale
        // rows is fully answered by unit metadata.
        if filter.terms.is_empty() && view.fallback_count() == 0 {
            if let Some(agg) = imcu.column_agg(ordinal) {
                result.stats.pushdown_units += 1;
                result.aggs.count += imcu.rows() as u64;
                result.aggs.non_null += agg.non_null;
                result.aggs.sum += agg.sum;
                if agg.non_null > 0 {
                    match imcu.storage_index.summary(ordinal) {
                        Some(MinMax::Int(lo, hi)) => {
                            result.aggs.merge_min(&Value::Int(*lo));
                            result.aggs.merge_max(&Value::Int(*hi));
                        }
                        Some(MinMax::Str(lo, hi)) => {
                            result.aggs.merge_min(&Value::Str(lo.clone()));
                            result.aggs.merge_max(&Value::Str(hi.clone()));
                        }
                        _ => {}
                    }
                }
                continue;
            }
        }

        // Column path: drive the leading predicate through its encoded
        // column, verify the rest per candidate via column reads — the
        // aggregated column is the only data actually decoded per row.
        result.stats.scanned_units += 1;
        let candidates: Vec<u32> = match filter.split_first() {
            Some((head, _)) if !imcu.storage_index.may_match(head) => Vec::new(),
            Some((head, _)) => imcu.scan(head),
            None => imcu.all_rows().collect(),
        };
        let rest = filter.split_first().map(|(_, r)| r).unwrap_or(&[]);
        for rn in candidates {
            let loc = imcu.loc(rn);
            if view.is_invalid(loc) {
                continue;
            }
            if rest.iter().all(|p| p.eval_value(&imcu.value(rn, p.ordinal))) {
                result.aggs.add(&imcu.value(rn, ordinal));
            }
        }

        let mut fallback: Vec<imadg_storage::RowLoc> = Vec::with_capacity(view.fallback_count());
        view.collect_fallback(&mut fallback);
        drop(view);
        store.fetch_rows_batched(&mut fallback, snapshot, |_, row| {
            if filter.eval_row(row) {
                add_row(&mut result, row);
                result.stats.fallback_rows += 1;
            }
        })?;
    }

    let uncovered: Vec<_> =
        store.block_dbas(object)?.into_iter().filter(|d| !covered.contains(d)).collect();
    if !uncovered.is_empty() {
        store.scan_blocks(&uncovered, snapshot, |_, row| {
            if filter.eval_row(row) {
                add_row(&mut result, row);
                result.stats.fallback_rows += 1;
            }
        })?;
    }
    Ok(Some(result))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_semantics() {
        let mut a = Aggregates::default();
        a.add(&Value::Int(5));
        a.add(&Value::Null);
        a.add(&Value::Int(-2));
        assert_eq!(a.count, 3, "COUNT(*) counts null rows");
        assert_eq!(a.non_null, 2);
        assert_eq!(a.sum, 3);
        assert_eq!(a.min, Some(Value::Int(-2)));
        assert_eq!(a.max, Some(Value::Int(5)));
        assert_eq!(a.average(), Some(1.5));
    }

    #[test]
    fn string_min_max() {
        let mut a = Aggregates::default();
        a.add(&Value::str("m"));
        a.add(&Value::str("a"));
        a.add(&Value::str("z"));
        assert_eq!(a.min, Some(Value::str("a")));
        assert_eq!(a.max, Some(Value::str("z")));
        assert_eq!(a.sum, 0);
    }

    #[test]
    fn empty_average_is_none() {
        let a = Aggregates::default();
        assert_eq!(a.average(), None);
    }
}
