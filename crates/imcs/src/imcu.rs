//! In-Memory Columnar Units (IMCUs).
//!
//! An IMCU is a read-only columnar snapshot of a DBA range of one object,
//! consistent as of its snapshot SCN (paper §II.B). It never changes after
//! construction; transactional drift is tracked in the accompanying SMU and
//! resolved by the scan engine.

use std::collections::HashMap;

use imadg_common::{Dba, ObjectId, Result, Scn, TenantId};
use imadg_storage::{Row, RowLoc, Schema, Store, Value};

use crate::column::ColumnCu;
use crate::expression::ImExpression;

/// Pre-computed per-column aggregates of one unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColAgg {
    /// Sum over non-null integer values (0 for string columns).
    pub sum: i128,
    /// Number of non-null values.
    pub non_null: u64,
}
use crate::predicate::Predicate;
use crate::storage_index::StorageIndex;

/// A populated columnar unit.
#[derive(Debug)]
pub struct Imcu {
    /// Owning object.
    pub object: ObjectId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Blocks this unit covers.
    pub dbas: Vec<Dba>,
    /// Snapshot SCN the data is consistent as of (a published QuerySCN on
    /// the standby, §III.A).
    pub snapshot: Scn,
    /// Schema version at population time (§III.G: definition changes drop
    /// the unit).
    pub schema_version: u32,
    /// Row-number → physical location.
    locs: Vec<RowLoc>,
    /// Physical location → row number (SMU reconciliation).
    loc_index: HashMap<RowLoc, u32>,
    /// Encoded columns: base columns at schema ordinals, then one virtual
    /// column per in-memory expression (paper §V).
    columns: Vec<ColumnCu>,
    /// Names of the virtual (expression) columns, in storage order after
    /// the base columns.
    virtual_names: Vec<String>,
    /// Number of base (schema) columns.
    base_arity: usize,
    /// Per-column pre-computed aggregates (aggregation push-down: COUNT /
    /// SUM / non-null counts answered from unit metadata, paper §V
    /// "aggregation push-down ... extended seamlessly to ADG").
    col_aggs: Vec<ColAgg>,
    /// Min/max storage index (covers virtual columns too).
    pub storage_index: StorageIndex,
    /// True until the population worker swaps real data in.
    pending: bool,
}

impl Imcu {
    /// Populate a unit covering `dbas` at `snapshot` by scanning the
    /// row-store with Consistent Read.
    pub fn build(
        store: &Store,
        object: ObjectId,
        tenant: TenantId,
        dbas: Vec<Dba>,
        snapshot: Scn,
        schema: &Schema,
    ) -> Result<Imcu> {
        Imcu::build_with_expressions(store, object, tenant, dbas, snapshot, schema, &[])
    }

    /// Populate a unit, additionally materializing the given in-memory
    /// expressions as encoded virtual columns (paper §V: evaluated once at
    /// population, filtered like any base column at scan).
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_expressions(
        store: &Store,
        object: ObjectId,
        tenant: TenantId,
        dbas: Vec<Dba>,
        snapshot: Scn,
        schema: &Schema,
        exprs: &[ImExpression],
    ) -> Result<Imcu> {
        let base_arity = schema.arity();
        let mut locs: Vec<RowLoc> = Vec::new();
        let mut col_values: Vec<Vec<Value>> = vec![Vec::new(); base_arity + exprs.len()];
        store.scan_blocks(&dbas, snapshot, |loc, row| {
            locs.push(loc);
            for (ord, col) in col_values.iter_mut().enumerate().take(base_arity) {
                col.push(row.get(ord).clone());
            }
            for (i, e) in exprs.iter().enumerate() {
                col_values[base_arity + i].push(e.expr.eval(row));
            }
        })?;
        let mut columns: Vec<ColumnCu> = schema
            .all_columns()
            .iter()
            .enumerate()
            .map(|(ord, def)| ColumnCu::build(def.ctype, &col_values[ord]))
            .collect();
        for (i, e) in exprs.iter().enumerate() {
            let ctype = e.expr.result_type(schema)?;
            columns.push(ColumnCu::build(ctype, &col_values[base_arity + i]));
        }
        let col_aggs: Vec<ColAgg> = col_values
            .iter()
            .map(|vals| {
                let mut agg = ColAgg::default();
                for v in vals {
                    match v {
                        Value::Int(x) => {
                            agg.sum += i128::from(*x);
                            agg.non_null += 1;
                        }
                        Value::Str(_) => agg.non_null += 1,
                        Value::Null => {}
                    }
                }
                agg
            })
            .collect();
        let storage_index = StorageIndex::new(columns.iter().map(|c| c.min_max()).collect());
        let loc_index = locs.iter().enumerate().map(|(i, &l)| (l, i as u32)).collect();
        Ok(Imcu {
            object,
            tenant,
            dbas,
            snapshot,
            schema_version: schema.version(),
            locs,
            loc_index,
            columns,
            virtual_names: exprs.iter().map(|e| e.name.clone()).collect(),
            base_arity,
            col_aggs,
            storage_index,
            pending: false,
        })
    }

    /// Storage ordinal of a virtual (expression) column, if this unit
    /// materialized it.
    pub fn virtual_ordinal(&self, name: &str) -> Option<usize> {
        self.virtual_names.iter().position(|n| n == name).map(|i| self.base_arity + i)
    }

    /// Pre-computed aggregates of one column (aggregation push-down).
    pub fn column_agg(&self, ordinal: usize) -> Option<ColAgg> {
        self.col_aggs.get(ordinal).copied()
    }

    /// A *pending* unit: claims its DBA range (so invalidation flushes have
    /// an SMU to target from the moment of snapshot capture) but holds no
    /// data yet. The population worker swaps the built unit in later; scans
    /// treat pending units as fully-invalid and fall back to the row-store.
    pub fn pending(
        object: ObjectId,
        tenant: TenantId,
        dbas: Vec<Dba>,
        snapshot: Scn,
        schema_version: u32,
    ) -> Imcu {
        Imcu {
            object,
            tenant,
            dbas,
            snapshot,
            schema_version,
            locs: Vec::new(),
            loc_index: HashMap::new(),
            columns: Vec::new(),
            virtual_names: Vec::new(),
            base_arity: 0,
            col_aggs: Vec::new(),
            storage_index: StorageIndex::default(),
            pending: true,
        }
    }

    /// Is this a pending (not yet built) unit?
    pub fn is_pending(&self) -> bool {
        self.pending
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.locs.len()
    }

    /// Physical location of row `rownum`.
    pub fn loc(&self, rownum: u32) -> RowLoc {
        self.locs[rownum as usize]
    }

    /// Row number of a physical location, if the unit holds it.
    pub fn rownum(&self, loc: RowLoc) -> Option<u32> {
        self.loc_index.get(&loc).copied()
    }

    /// Reconstruct the full *base* row image of `rownum` (virtual columns
    /// are not part of the row image).
    pub fn materialize(&self, rownum: u32) -> Row {
        Row::new(
            self.columns.iter().take(self.base_arity).map(|c| c.get(rownum as usize)).collect(),
        )
    }

    /// Materialize every selected row of `sel` into `out`, in row order.
    /// The batched sibling of [`Imcu::materialize`] for bitmap-driven
    /// scans: selected rownums are known up front, so values are gathered
    /// column-at-a-time (overlapping the scattered-column cache misses)
    /// and each row image is built in a single allocation.
    pub fn materialize_matches(&self, sel: &crate::bitmap::SelBitmap, out: &mut Vec<Row>) {
        let rns: Vec<u32> = sel.iter_ones().collect();
        if rns.is_empty() {
            return;
        }
        let cols = &self.columns[..self.base_arity.min(self.columns.len())];
        let mut scratch: Vec<Vec<Value>> = Vec::with_capacity(cols.len());
        for c in cols {
            let mut values = Vec::new();
            c.gather(&rns, &mut values);
            scratch.push(values);
        }
        out.reserve(rns.len());
        for i in 0..rns.len() {
            out.push(Row::from_iter_exact(
                scratch.iter_mut().map(|col| std::mem::replace(&mut col[i], Value::Null)),
            ));
        }
    }

    /// Read one column of one row.
    pub fn value(&self, rownum: u32, ordinal: usize) -> Value {
        self.columns.get(ordinal).map(|c| c.get(rownum as usize)).unwrap_or(Value::Null)
    }

    /// Scan one predicate through its encoded column; returns matching row
    /// numbers in ascending order (scalar reference path).
    pub fn scan(&self, pred: &Predicate) -> Vec<u32> {
        let mut out = Vec::new();
        if let Some(col) = self.columns.get(pred.ordinal) {
            col.scan(pred, &mut out);
        }
        out
    }

    /// Evaluate one predicate through its encoding's branchless kernel into
    /// a fresh selection bitmap. A missing ordinal selects nothing.
    pub fn pred_bitmap(&self, pred: &Predicate) -> crate::bitmap::SelBitmap {
        let mut sel = crate::bitmap::SelBitmap::zeroes(self.rows());
        if let Some(col) = self.columns.get(pred.ordinal) {
            col.scan_bitmap(pred, &mut sel);
        }
        sel
    }

    /// Evaluate a whole conjunction in column space: every term runs
    /// through its encoded column's kernel and the per-term bitmaps are
    /// AND-ed — only final survivors ever materialize. Returns `None` when
    /// any term's min/max storage-index check excludes the unit (a failed
    /// conjunct falsifies the conjunction, so the whole unit prunes).
    pub fn filter_bitmap(
        &self,
        filter: &crate::predicate::Filter,
    ) -> Option<crate::bitmap::SelBitmap> {
        if filter.terms.iter().any(|p| !self.storage_index.may_match(p)) {
            return None;
        }
        let mut acc: Option<crate::bitmap::SelBitmap> = None;
        for p in &filter.terms {
            let sel = self.pred_bitmap(p);
            match &mut acc {
                None => acc = Some(sel),
                Some(a) => {
                    a.and_assign(&sel);
                    if a.is_empty() {
                        break;
                    }
                }
            }
        }
        Some(acc.unwrap_or_else(|| crate::bitmap::SelBitmap::ones(self.rows())))
    }

    /// Fold the rows selected by `sel` into `aggs` straight off the encoded
    /// column — aggregation push-down over a selection bitmap. A missing
    /// ordinal aggregates as all-NULL (COUNT advances, nothing else).
    pub fn aggregate_masked(
        &self,
        ordinal: usize,
        sel: &crate::bitmap::SelBitmap,
        aggs: &mut crate::aggregate::Aggregates,
    ) {
        match self.columns.get(ordinal) {
            Some(col) => col.aggregate_masked(sel, aggs),
            None => aggs.count += sel.count() as u64,
        }
    }

    /// All row numbers (driver for unfiltered scans).
    pub fn all_rows(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.rows() as u32
    }

    /// Approximate DRAM footprint of the encoded unit (the cold tier's
    /// budget currency). Pending units hold no data and cost nothing.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes()).sum::<usize>()
            + self.locs.len() * (std::mem::size_of::<RowLoc>() + 24)
    }

    /// Row locations in row-number order (cold serialization input).
    pub(crate) fn locs(&self) -> &[RowLoc] {
        &self.locs
    }

    /// Encoded columns, base then virtual (cold serialization input).
    pub(crate) fn columns(&self) -> &[ColumnCu] {
        &self.columns
    }

    /// Virtual (expression) column names, in storage order.
    pub(crate) fn virtual_names(&self) -> &[String] {
        &self.virtual_names
    }

    /// Number of base (schema) columns.
    pub(crate) fn base_arity(&self) -> usize {
        self.base_arity
    }

    /// Per-column pre-computed aggregates.
    pub(crate) fn col_aggs(&self) -> &[ColAgg] {
        &self.col_aggs
    }

    /// Reassemble a unit from decoded cold-tier parts. The loc index is
    /// rebuilt; the unit comes back non-pending, byte-identical in
    /// behavior to the unit that was serialized.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        object: ObjectId,
        tenant: TenantId,
        dbas: Vec<Dba>,
        snapshot: Scn,
        schema_version: u32,
        locs: Vec<RowLoc>,
        columns: Vec<ColumnCu>,
        virtual_names: Vec<String>,
        base_arity: usize,
        col_aggs: Vec<ColAgg>,
    ) -> Imcu {
        let storage_index = StorageIndex::new(columns.iter().map(|c| c.min_max()).collect());
        let loc_index = locs.iter().enumerate().map(|(i, &l)| (l, i as u32)).collect();
        Imcu {
            object,
            tenant,
            dbas,
            snapshot,
            schema_version,
            locs,
            loc_index,
            columns,
            virtual_names,
            base_arity,
            col_aggs,
            storage_index,
            pending: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use imadg_common::TxnId;
    use imadg_storage::{Block, ColumnType, RowVersion, TableSpec};

    fn schema() -> Schema {
        Schema::of(&[("id", ColumnType::Int), ("c", ColumnType::Varchar)])
    }

    /// Store with one block of `n` committed rows at SCN 5.
    fn store_with_rows(n: i64) -> Store {
        let s = Store::new();
        s.create_table(TableSpec {
            id: ObjectId(1),
            name: "t".into(),
            tenant: TenantId::DEFAULT,
            schema: schema(),
            key_ordinal: 0,
            rows_per_block: 128,
        })
        .unwrap();
        s.cache().install(Block::format(Dba(1), ObjectId(1), 128));
        s.segment(ObjectId(1)).unwrap().lock().add_block(Dba(1));
        s.txns().commit(TxnId(1), Scn(5));
        let b = s.cache().get(Dba(1)).unwrap();
        for i in 0..n {
            b.write().chain_mut(i as u16).unwrap().push(RowVersion {
                txn: TxnId(1),
                scn: Scn(3),
                data: Some(Row::new(vec![Value::Int(i), Value::str(format!("s{}", i % 3))])),
            });
        }
        s
    }

    #[test]
    fn build_and_materialize() {
        let s = store_with_rows(10);
        let imcu = Imcu::build(&s, ObjectId(1), TenantId::DEFAULT, vec![Dba(1)], Scn(5), &schema())
            .unwrap();
        assert_eq!(imcu.rows(), 10);
        let r = imcu.materialize(4);
        assert_eq!(r[0], Value::Int(4));
        assert_eq!(r[1], Value::str("s1"));
        assert_eq!(imcu.value(4, 0), Value::Int(4));
        assert_eq!(imcu.loc(0), RowLoc { dba: Dba(1), slot: 0 });
        assert_eq!(imcu.rownum(RowLoc { dba: Dba(1), slot: 7 }), Some(7));
        assert_eq!(imcu.rownum(RowLoc { dba: Dba(99), slot: 0 }), None);
    }

    #[test]
    fn snapshot_consistency() {
        let s = store_with_rows(5);
        // A later uncommitted write is not part of the unit.
        s.txns().begin(TxnId(2));
        let b = s.cache().get(Dba(1)).unwrap();
        b.write().chain_mut(0).unwrap().push(RowVersion {
            txn: TxnId(2),
            scn: Scn(8),
            data: Some(Row::new(vec![Value::Int(999), Value::str("zz")])),
        });
        let imcu = Imcu::build(&s, ObjectId(1), TenantId::DEFAULT, vec![Dba(1)], Scn(5), &schema())
            .unwrap();
        assert_eq!(imcu.value(0, 0), Value::Int(0), "snapshot sees the committed image");
    }

    #[test]
    fn predicate_scan() {
        let s = store_with_rows(9);
        let sc = schema();
        let imcu =
            Imcu::build(&s, ObjectId(1), TenantId::DEFAULT, vec![Dba(1)], Scn(5), &sc).unwrap();
        let p = Predicate::eq(&sc, "c", Value::str("s0")).unwrap();
        assert_eq!(imcu.scan(&p), vec![0, 3, 6]);
        let p = Predicate::new(&sc, "id", CmpOp::Ge, Value::Int(7)).unwrap();
        assert_eq!(imcu.scan(&p), vec![7, 8]);
    }

    #[test]
    fn storage_index_reflects_contents() {
        let s = store_with_rows(10);
        let sc = schema();
        let imcu =
            Imcu::build(&s, ObjectId(1), TenantId::DEFAULT, vec![Dba(1)], Scn(5), &sc).unwrap();
        let p = Predicate::new(&sc, "id", CmpOp::Gt, Value::Int(100)).unwrap();
        assert!(!imcu.storage_index.may_match(&p), "out of range → prunable");
        let p = Predicate::eq(&sc, "id", Value::Int(5)).unwrap();
        assert!(imcu.storage_index.may_match(&p));
    }

    #[test]
    fn filter_bitmap_conjunction_and_pruning() {
        let s = store_with_rows(10);
        let sc = schema();
        let imcu =
            Imcu::build(&s, ObjectId(1), TenantId::DEFAULT, vec![Dba(1)], Scn(5), &sc).unwrap();
        let f = crate::predicate::Filter {
            terms: vec![
                Predicate::new(&sc, "id", CmpOp::Ge, Value::Int(3)).unwrap(),
                Predicate::eq(&sc, "c", Value::str("s0")).unwrap(),
            ],
        };
        let sel = imcu.filter_bitmap(&f).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![3, 6, 9]);
        // Empty filter selects everything.
        let all = imcu.filter_bitmap(&crate::predicate::Filter::all()).unwrap();
        assert_eq!(all.count(), 10);
        // Any out-of-range conjunct prunes the whole unit.
        let pruned = crate::predicate::Filter {
            terms: vec![
                Predicate::eq(&sc, "c", Value::str("s0")).unwrap(),
                Predicate::new(&sc, "id", CmpOp::Gt, Value::Int(100)).unwrap(),
            ],
        };
        assert!(imcu.filter_bitmap(&pruned).is_none());
    }

    #[test]
    fn masked_aggregate_over_unit() {
        let s = store_with_rows(10);
        let sc = schema();
        let imcu =
            Imcu::build(&s, ObjectId(1), TenantId::DEFAULT, vec![Dba(1)], Scn(5), &sc).unwrap();
        let p = Predicate::new(&sc, "id", CmpOp::Lt, Value::Int(4)).unwrap();
        let sel = imcu.filter_bitmap(&crate::predicate::Filter::of(p)).unwrap();
        let mut aggs = crate::aggregate::Aggregates::default();
        imcu.aggregate_masked(0, &sel, &mut aggs);
        assert_eq!(aggs.count, 4);
        assert_eq!(aggs.sum, 6);
        assert_eq!(aggs.min, Some(Value::Int(0)));
        assert_eq!(aggs.max, Some(Value::Int(3)));
    }

    #[test]
    fn empty_range_builds_empty_unit() {
        let s = store_with_rows(0);
        let imcu = Imcu::build(&s, ObjectId(1), TenantId::DEFAULT, vec![Dba(1)], Scn(5), &schema())
            .unwrap();
        assert_eq!(imcu.rows(), 0);
        assert_eq!(imcu.all_rows().count(), 0);
    }
}
