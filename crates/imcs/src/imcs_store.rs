//! The In-Memory Column Store of one database instance: IMCU handles,
//! per-object coverage maps, and the invalidation entry points the
//! DBIM-on-ADG flush component writes through.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use imadg_common::{Dba, ObjectId, Scn, TenantId};
use imadg_storage::RowLoc;
use parking_lot::RwLock;

use crate::coldstore::ColdUnit;
use crate::expression::ImExpression;
use crate::imcu::Imcu;
use crate::smu::Smu;

/// A slot holding one IMCU and its SMU, plus (when evicted) the unit's
/// cold-tier state.
///
/// The pair is swapped atomically by repopulation: scans clone both Arcs
/// under a read lock and work on a consistent pair; invalidation flushes
/// write into whichever SMU is current; the swap itself carries over SMU
/// entries newer than the rebuild snapshot (see [`Smu::carry_over`]).
///
/// Eviction replaces the hot unit with a *pending placeholder* (same
/// snapshot, SMU untouched) and attaches a [`ColdUnit`]. The cold scan
/// path activates only when `cold.is_some() && imcu.is_pending()`; every
/// race or cold-read failure therefore degrades to the existing pending
/// bypass — a correct row-store scan — never a wrong answer.
#[derive(Debug)]
pub struct ImcuHandle {
    pair: RwLock<(Arc<Imcu>, Arc<Smu>)>,
    /// Cold-tier state; `Some` from eviction until recall. Lock order:
    /// never acquire `pair` while holding `cold` — writers take `pair`
    /// first, readers take each lock on its own.
    cold: RwLock<Option<Arc<ColdUnit>>>,
    /// Scan touches since the tier engine's last pass (recency input for
    /// the eviction policy; drained by [`ImcuHandle::take_scans`]).
    scans: AtomicU64,
}

impl ImcuHandle {
    /// Wrap a freshly built or pending unit with an empty SMU.
    pub fn new(imcu: Imcu) -> ImcuHandle {
        ImcuHandle {
            pair: RwLock::new((Arc::new(imcu), Arc::new(Smu::new()))),
            cold: RwLock::new(None),
            scans: AtomicU64::new(0),
        }
    }

    /// Current `(imcu, smu)` pair.
    pub fn pair(&self) -> (Arc<Imcu>, Arc<Smu>) {
        let g = self.pair.read();
        (g.0.clone(), g.1.clone())
    }

    /// The current unit (metadata access).
    pub fn imcu(&self) -> Arc<Imcu> {
        self.pair.read().0.clone()
    }

    /// The current SMU (flush target).
    pub fn smu(&self) -> Arc<Smu> {
        self.pair.read().1.clone()
    }

    /// Install a rebuilt unit, carrying over SMU entries newer than its
    /// snapshot. Runs under the pair's write lock so no concurrent flush
    /// can fall between the carry-over and the install.
    pub fn swap(&self, rebuilt: Imcu) {
        let mut g = self.pair.write();
        let fresh = g.1.carry_over(rebuilt.snapshot);
        *g = (Arc::new(rebuilt), Arc::new(fresh));
    }

    /// Route an invalidation to this handle's SMU: rows known to the unit
    /// are marked stale; unknown rows in covered blocks are post-snapshot
    /// inserts. On a cold handle the placeholder holds no rownums, so
    /// journaled DML lands as inserts — the cold scan's fallback pass and
    /// the re-compaction merge treat invalid and inserted alike.
    pub fn invalidate(&self, loc: RowLoc, commit_scn: Scn) {
        let g = self.pair.read();
        // A unit frozen at snapshot `S` already absorbed every change
        // committed at or before `S` (the `Smu::carry_over` rule), so
        // mining replayed from below the snapshot — the restart path that
        // re-mines for restored cold units — is dropped, not recorded.
        if commit_scn <= g.0.snapshot {
            return;
        }
        if g.0.rownum(loc).is_some() {
            g.1.invalidate_row(loc, commit_scn);
        } else {
            g.1.record_insert(loc, commit_scn);
        }
    }

    /// The cold-tier state, if the unit has been evicted.
    pub fn cold(&self) -> Option<Arc<ColdUnit>> {
        self.cold.read().clone()
    }

    /// Is this unit currently served from the cold tier? True only while
    /// the hot slot holds the pending placeholder *and* a cold file is
    /// attached — the activation rule that keeps every race benign.
    pub fn is_cold(&self) -> bool {
        let pending = self.pair.read().0.is_pending();
        pending && self.cold.read().is_some()
    }

    /// Note one scan touch (recency input for the eviction policy).
    pub fn note_scan(&self) {
        self.scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain the scan-activity counter (one tier pass = one decay epoch).
    pub fn take_scans(&self) -> u64 {
        self.scans.swap(0, Ordering::Relaxed)
    }

    /// Evict: swap the hot unit for a pending placeholder at the same
    /// snapshot (SMU untouched — its journal still describes drift against
    /// the serialized data) and attach the cold state. Returns `false`
    /// without touching the handle when the slot no longer holds the unit
    /// the cold file was serialized from (a repopulation swap raced the
    /// eviction) — the caller discards the file.
    pub fn evict_to_cold(&self, cold: Arc<ColdUnit>) -> bool {
        let mut g = self.pair.write();
        if g.0.is_pending() || g.0.snapshot != cold.meta.snapshot {
            return false;
        }
        let placeholder = Imcu::pending(
            g.0.object,
            g.0.tenant,
            g.0.dbas.clone(),
            g.0.snapshot,
            g.0.schema_version,
        );
        *self.cold.write() = Some(cold);
        g.0 = Arc::new(placeholder);
        true
    }

    /// Restart-time restore: attach cold state to a handle that was just
    /// created from the file's own footer (pending placeholder at the
    /// file's snapshot). Unlike [`ImcuHandle::evict_to_cold`] the file is
    /// the authority here, so no slot validation applies.
    pub fn restore_cold(&self, cold: Arc<ColdUnit>) {
        let _g = self.pair.write();
        *self.cold.write() = Some(cold);
    }

    /// Detach an orphaned cold state (a repopulation swap raced an
    /// eviction and installed fresh hot data over the placeholder; the
    /// cold file is obsolete). Returns the detached state so the caller
    /// can delete the file. No-op on genuinely cold handles.
    pub fn clear_cold_if_hot(&self) -> Option<Arc<ColdUnit>> {
        let g = self.pair.write();
        if g.0.is_pending() {
            return None;
        }
        self.cold.write().take()
    }

    /// Detach the cold state unconditionally (a corrupt cold file found
    /// by the tier engine). The handle is left as a plain pending unit,
    /// which the population engine rebuilds from the row store.
    pub fn drop_cold(&self) -> Option<Arc<ColdUnit>> {
        let _g = self.pair.write();
        self.cold.write().take()
    }

    /// Recall: install the decoded hot unit (same snapshot, SMU untouched)
    /// and detach the cold state.
    pub fn install_hot(&self, imcu: Imcu) {
        let mut g = self.pair.write();
        g.0 = Arc::new(imcu);
        *self.cold.write() = None;
    }

    /// Re-compaction swap: the journal has been merged into a fresh cold
    /// file at `rebuilt_snapshot`. Install a placeholder at that snapshot,
    /// carry over SMU entries newer than it, and attach the new cold
    /// state — the cold-tier analogue of [`ImcuHandle::swap`].
    pub fn swap_to_cold(&self, rebuilt_snapshot: Scn, cold: Arc<ColdUnit>) {
        let mut g = self.pair.write();
        let fresh = g.1.carry_over(rebuilt_snapshot);
        let placeholder = Imcu::pending(
            g.0.object,
            g.0.tenant,
            g.0.dbas.clone(),
            rebuilt_snapshot,
            g.0.schema_version,
        );
        *self.cold.write() = Some(cold);
        *g = (Arc::new(placeholder), Arc::new(fresh));
    }
}

/// All IMCUs of one object on this instance.
#[derive(Debug)]
pub struct ObjectImcs {
    /// Owning object.
    pub object: ObjectId,
    /// Owning tenant (coarse invalidation is per tenant, §III.E).
    pub tenant: TenantId,
    handles: RwLock<Vec<Arc<ImcuHandle>>>,
    by_dba: RwLock<HashMap<Dba, Arc<ImcuHandle>>>,
}

impl ObjectImcs {
    fn new(object: ObjectId, tenant: TenantId) -> ObjectImcs {
        ObjectImcs {
            object,
            tenant,
            handles: RwLock::new(Vec::new()),
            by_dba: RwLock::new(HashMap::new()),
        }
    }

    /// Register a handle (pending or built) and claim its DBA range.
    pub fn register(&self, handle: Arc<ImcuHandle>) {
        let dbas = handle.imcu().dbas.clone();
        let mut by_dba = self.by_dba.write();
        let mut handles = self.handles.write();
        for dba in dbas {
            by_dba.insert(dba, handle.clone());
        }
        handles.push(handle);
    }

    /// Snapshot of the object's handles.
    pub fn handles(&self) -> Vec<Arc<ImcuHandle>> {
        self.handles.read().clone()
    }

    /// Handle covering `dba`, if any.
    pub fn covering(&self, dba: Dba) -> Option<Arc<ImcuHandle>> {
        self.by_dba.read().get(&dba).cloned()
    }

    /// Is `dba` covered by any unit?
    pub fn covers(&self, dba: Dba) -> bool {
        self.by_dba.read().contains_key(&dba)
    }

    /// Number of units.
    pub fn unit_count(&self) -> usize {
        self.handles.read().len()
    }

    /// Total populated rows across non-pending units.
    pub fn populated_rows(&self) -> usize {
        self.handles.read().iter().map(|h| h.imcu().rows()).sum()
    }

    /// Approximate DRAM held by this object's hot units (cold units sit
    /// behind pending placeholders and cost ~nothing).
    pub fn hot_bytes(&self) -> usize {
        self.handles.read().iter().map(|h| h.imcu().approx_bytes()).sum()
    }
}

/// The instance-level column store.
#[derive(Debug, Default)]
pub struct ImcsStore {
    objects: RwLock<HashMap<ObjectId, Arc<ObjectImcs>>>,
    /// In-memory expressions per object (paper §V). Survive unit drops —
    /// like dictionary metadata — so repopulation re-materializes them.
    expressions: RwLock<HashMap<ObjectId, Vec<ImExpression>>>,
}

impl ImcsStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The object's column-store entry, if populated (or populating).
    pub fn object(&self, object: ObjectId) -> Option<Arc<ObjectImcs>> {
        self.objects.read().get(&object).cloned()
    }

    /// Get or create the object entry.
    pub fn ensure_object(&self, object: ObjectId, tenant: TenantId) -> Arc<ObjectImcs> {
        if let Some(o) = self.object(object) {
            return o;
        }
        self.objects
            .write()
            .entry(object)
            .or_insert_with(|| Arc::new(ObjectImcs::new(object, tenant)))
            .clone()
    }

    /// Drop every unit of `object` (NO INMEMORY, definition-changing DDL,
    /// or placement change).
    pub fn drop_object(&self, object: ObjectId) {
        self.objects.write().remove(&object);
    }

    /// All object entries.
    pub fn all_objects(&self) -> Vec<Arc<ObjectImcs>> {
        self.objects.read().values().cloned().collect()
    }

    /// Route one invalidation; returns true when a covering unit existed.
    pub fn invalidate(&self, object: ObjectId, loc: RowLoc, commit_scn: Scn) -> bool {
        let Some(obj) = self.object(object) else { return false };
        let Some(handle) = obj.covering(loc.dba) else { return false };
        handle.invalidate(loc, commit_scn);
        true
    }

    /// Coarse invalidation: mark every unit of every object of `tenant`
    /// fully invalid (paper §III.E). Returns units marked.
    pub fn mark_tenant_invalid(&self, tenant: TenantId) -> usize {
        let mut n = 0;
        for obj in self.all_objects() {
            if obj.tenant == tenant {
                for h in obj.handles() {
                    h.smu().mark_all_invalid();
                    n += 1;
                }
            }
        }
        n
    }

    /// Total populated (non-pending) rows on this instance.
    pub fn populated_rows(&self) -> usize {
        self.all_objects().iter().map(|o| o.populated_rows()).sum()
    }

    /// Approximate DRAM held by hot units on this instance (the number the
    /// eviction policy holds under `memory_budget_bytes`).
    pub fn hot_bytes(&self) -> usize {
        self.all_objects().iter().map(|o| o.hot_bytes()).sum()
    }

    /// Register an in-memory expression for `object` (replaces an existing
    /// expression of the same name). Existing units are dropped so the
    /// next population pass materializes the new virtual column.
    pub fn register_expression(&self, object: ObjectId, expr: ImExpression) {
        let mut map = self.expressions.write();
        let list = map.entry(object).or_default();
        list.retain(|e| e.name != expr.name);
        list.push(expr);
        drop(map);
        self.drop_object(object);
    }

    /// Remove a named expression; drops the object's units for rebuild.
    pub fn unregister_expression(&self, object: ObjectId, name: &str) {
        if let Some(list) = self.expressions.write().get_mut(&object) {
            list.retain(|e| e.name != name);
        }
        self.drop_object(object);
    }

    /// The expressions registered for `object`.
    pub fn expressions(&self, object: ObjectId) -> Vec<ImExpression> {
        self.expressions.read().get(&object).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::Scn;

    fn pending_unit(obj: u32, dbas: &[u64], snapshot: u64) -> Imcu {
        Imcu::pending(
            ObjectId(obj),
            TenantId::DEFAULT,
            dbas.iter().map(|&d| Dba(d)).collect(),
            Scn(snapshot),
            1,
        )
    }

    #[test]
    fn register_and_cover() {
        let s = ImcsStore::new();
        let o = s.ensure_object(ObjectId(1), TenantId::DEFAULT);
        o.register(Arc::new(ImcuHandle::new(pending_unit(1, &[1, 2], 5))));
        assert!(o.covers(Dba(1)));
        assert!(o.covers(Dba(2)));
        assert!(!o.covers(Dba(3)));
        assert_eq!(o.unit_count(), 1);
        assert!(s.object(ObjectId(1)).is_some());
        assert!(s.object(ObjectId(2)).is_none());
    }

    #[test]
    fn ensure_object_is_idempotent() {
        let s = ImcsStore::new();
        let a = s.ensure_object(ObjectId(1), TenantId::DEFAULT);
        let b = s.ensure_object(ObjectId(1), TenantId::DEFAULT);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn invalidation_routes_to_covering_handle() {
        let s = ImcsStore::new();
        let o = s.ensure_object(ObjectId(1), TenantId::DEFAULT);
        let h = Arc::new(ImcuHandle::new(pending_unit(1, &[7], 5)));
        o.register(h.clone());
        let loc = RowLoc { dba: Dba(7), slot: 0 };
        assert!(s.invalidate(ObjectId(1), loc, Scn(9)));
        // Pending unit holds no rows → recorded as a post-snapshot insert.
        assert_eq!(h.smu().view().inserted_count(), 1);
        // Uncovered block: not routed.
        assert!(!s.invalidate(ObjectId(1), RowLoc { dba: Dba(99), slot: 0 }, Scn(9)));
        // Unknown object: not routed.
        assert!(!s.invalidate(ObjectId(9), loc, Scn(9)));
    }

    #[test]
    fn swap_preserves_newer_smu_entries() {
        let h = ImcuHandle::new(pending_unit(1, &[1], 5));
        h.invalidate(RowLoc { dba: Dba(1), slot: 0 }, Scn(10));
        h.invalidate(RowLoc { dba: Dba(1), slot: 1 }, Scn(30));
        // Rebuild at snapshot 20: the SCN-10 entry is absorbed.
        h.swap(pending_unit(1, &[1], 20));
        let v = h.smu().view();
        assert_eq!(v.inserted_count() + v.invalid_count(), 1);
    }

    #[test]
    fn coarse_invalidation_scoped_to_tenant() {
        let s = ImcsStore::new();
        let o1 = s.ensure_object(ObjectId(1), TenantId(1));
        let o2 = s.ensure_object(ObjectId(2), TenantId(2));
        let h1 = Arc::new(ImcuHandle::new(Imcu::pending(
            ObjectId(1),
            TenantId(1),
            vec![Dba(1)],
            Scn(5),
            1,
        )));
        let h2 = Arc::new(ImcuHandle::new(Imcu::pending(
            ObjectId(2),
            TenantId(2),
            vec![Dba(2)],
            Scn(5),
            1,
        )));
        o1.register(h1.clone());
        o2.register(h2.clone());
        assert_eq!(s.mark_tenant_invalid(TenantId(1)), 1);
        assert!(h1.smu().view().all_invalid());
        assert!(!h2.smu().view().all_invalid());
    }

    #[test]
    fn drop_object_removes_units() {
        let s = ImcsStore::new();
        let o = s.ensure_object(ObjectId(1), TenantId::DEFAULT);
        o.register(Arc::new(ImcuHandle::new(pending_unit(1, &[1], 5))));
        s.drop_object(ObjectId(1));
        assert!(s.object(ObjectId(1)).is_none());
    }
}
