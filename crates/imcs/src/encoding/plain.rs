//! Plain (uncompressed) integer column unit: packed `i64` vector plus a
//! null bitmap. The fast path for high-cardinality number columns.

use imadg_storage::Value;

use crate::predicate::{CmpOp, Predicate};

/// Fixed-width integer column unit.
#[derive(Debug, Clone)]
pub struct PlainIntCu {
    values: Vec<i64>,
    /// One bit per row; set = NULL. Absent when the column has no NULLs.
    nulls: Option<Vec<u64>>,
}

#[inline]
fn bit(bits: &[u64], i: usize) -> bool {
    bits[i >> 6] & (1 << (i & 63)) != 0
}

impl PlainIntCu {
    /// Encode a slice of values (`Int` or `Null`).
    pub fn build(values: &[Value]) -> PlainIntCu {
        let mut out = Vec::with_capacity(values.len());
        let mut nulls: Option<Vec<u64>> = None;
        for (i, v) in values.iter().enumerate() {
            match v {
                Value::Int(x) => out.push(*x),
                _ => {
                    out.push(0);
                    let bits = nulls.get_or_insert_with(|| vec![0u64; values.len().div_ceil(64)]);
                    bits[i >> 6] |= 1 << (i & 63);
                }
            }
        }
        PlainIntCu { values: out, nulls }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        if self.nulls.as_ref().is_some_and(|b| bit(b, row)) {
            Value::Null
        } else {
            Value::Int(self.values[row])
        }
    }

    /// Min/max over non-null values (storage index input).
    pub fn min_max(&self) -> Option<(i64, i64)> {
        let mut it = (0..self.len()).filter_map(|i| match self.get(i) {
            Value::Int(x) => Some(x),
            _ => None,
        });
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for x in it {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        Some((lo, hi))
    }

    /// Append rows matching `pred` to `out` (tight loop over packed i64s —
    /// the vectorizable inner scan the paper's In-Memory Scan Engine runs
    /// with SIMD).
    pub fn scan(&self, pred: &Predicate, out: &mut Vec<u32>) {
        let target = match &pred.value {
            Value::Int(x) => *x,
            _ => return,
        };
        macro_rules! scan_op {
            ($cmp:expr) => {
                match &self.nulls {
                    None => {
                        for (i, &v) in self.values.iter().enumerate() {
                            if $cmp(v, target) {
                                out.push(i as u32);
                            }
                        }
                    }
                    Some(bits) => {
                        for (i, &v) in self.values.iter().enumerate() {
                            if !bit(bits, i) && $cmp(v, target) {
                                out.push(i as u32);
                            }
                        }
                    }
                }
            };
        }
        match pred.op {
            CmpOp::Eq => scan_op!(|v, t| v == t),
            CmpOp::Ne => scan_op!(|v, t| v != t),
            CmpOp::Lt => scan_op!(|v, t| v < t),
            CmpOp::Le => scan_op!(|v, t| v <= t),
            CmpOp::Gt => scan_op!(|v, t| v > t),
            CmpOp::Ge => scan_op!(|v, t| v >= t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_storage::{ColumnType, Schema};

    fn pred(op: CmpOp, x: i64) -> Predicate {
        let s = Schema::of(&[("n", ColumnType::Int)]);
        Predicate::new(&s, "n", op, Value::Int(x)).unwrap()
    }

    #[test]
    fn roundtrip_without_nulls() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let cu = PlainIntCu::build(&vals);
        assert_eq!(cu.len(), 100);
        for i in 0..100 {
            assert_eq!(cu.get(i), Value::Int(i as i64));
        }
        assert_eq!(cu.min_max(), Some((0, 99)));
    }

    #[test]
    fn roundtrip_with_nulls() {
        let vals = vec![Value::Int(5), Value::Null, Value::Int(-3)];
        let cu = PlainIntCu::build(&vals);
        assert_eq!(cu.get(0), Value::Int(5));
        assert_eq!(cu.get(1), Value::Null);
        assert_eq!(cu.get(2), Value::Int(-3));
        assert_eq!(cu.min_max(), Some((-3, 5)));
    }

    #[test]
    fn all_null_min_max() {
        let cu = PlainIntCu::build(&[Value::Null, Value::Null]);
        assert_eq!(cu.min_max(), None);
    }

    #[test]
    fn scan_operators() {
        let vals: Vec<Value> = [1i64, 5, 3, 5, 2].iter().copied().map(Value::Int).collect();
        let cu = PlainIntCu::build(&vals);
        let mut out = Vec::new();
        cu.scan(&pred(CmpOp::Eq, 5), &mut out);
        assert_eq!(out, vec![1, 3]);
        out.clear();
        cu.scan(&pred(CmpOp::Lt, 3), &mut out);
        assert_eq!(out, vec![0, 4]);
        out.clear();
        cu.scan(&pred(CmpOp::Ge, 3), &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        out.clear();
        cu.scan(&pred(CmpOp::Ne, 5), &mut out);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn scan_skips_nulls() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(1)];
        let cu = PlainIntCu::build(&vals);
        let mut out = Vec::new();
        cu.scan(&pred(CmpOp::Ne, 99), &mut out);
        assert_eq!(out, vec![0, 2], "NULL matches nothing, not even Ne");
    }
}
