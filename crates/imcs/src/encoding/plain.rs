//! Plain (uncompressed) integer column unit: packed values plus a null
//! bitmap. The fast path for high-cardinality number columns.
//!
//! Values are stored frame-of-reference packed when the column's non-null
//! range fits in 32 bits (`value = base + u32 code`) — half the scan
//! bandwidth of raw `i64`s, with predicates remapped into code space so
//! the compare kernels never decode. Columns whose range genuinely needs
//! 64 bits keep the wide layout.

use imadg_storage::Value;

use crate::bitmap::SelBitmap;
use crate::predicate::{CmpOp, Predicate};

/// Physical layout of the packed values.
#[derive(Debug, Clone)]
enum Repr {
    /// Full-width `i64`s: range exceeds 32 bits, or the unit is empty /
    /// all-NULL (no base to subtract).
    Wide(Vec<i64>),
    /// Frame-of-reference codes: `value = base + code`, `base` = column
    /// minimum. NULL rows store code 0 and are masked by the null bitmap.
    Packed { base: i64, codes: Vec<u32> },
}

/// Fixed-width integer column unit.
#[derive(Debug, Clone)]
pub struct PlainIntCu {
    repr: Repr,
    /// One bit per row; set = NULL. Absent when the column has no NULLs.
    nulls: Option<Vec<u64>>,
    /// Min/max over non-null values, computed once at build time (the
    /// storage index re-reads it on every refresh — walking every row
    /// through branchy `get()` there was pure waste).
    bounds: Option<(i64, i64)>,
}

#[inline]
fn bit(bits: &[u64], i: usize) -> bool {
    bits[i >> 6] & (1 << (i & 63)) != 0
}

impl PlainIntCu {
    /// Encode a slice of values (`Int` or `Null`).
    pub fn build(values: &[Value]) -> PlainIntCu {
        let mut wide = Vec::with_capacity(values.len());
        let mut nulls: Option<Vec<u64>> = None;
        let mut bounds: Option<(i64, i64)> = None;
        for (i, v) in values.iter().enumerate() {
            match v {
                Value::Int(x) => {
                    wide.push(*x);
                    bounds = match bounds {
                        None => Some((*x, *x)),
                        Some((lo, hi)) => Some((lo.min(*x), hi.max(*x))),
                    };
                }
                _ => {
                    wide.push(0);
                    let bits = nulls.get_or_insert_with(|| vec![0u64; values.len().div_ceil(64)]);
                    bits[i >> 6] |= 1 << (i & 63);
                }
            }
        }
        let repr = match bounds {
            Some((lo, hi)) if i128::from(hi) - i128::from(lo) <= i128::from(u32::MAX) => {
                let codes = wide
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        if nulls.as_ref().is_some_and(|b| bit(b, i)) {
                            0
                        } else {
                            (v - lo) as u32
                        }
                    })
                    .collect();
                Repr::Packed { base: lo, codes }
            }
            _ => Repr::Wide(wide),
        };
        PlainIntCu { repr, nulls, bounds }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Wide(v) => v.len(),
            Repr::Packed { codes, .. } => codes.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-null value at `row`, decoded to `i64`.
    #[inline]
    fn decode(&self, row: usize) -> i64 {
        match &self.repr {
            Repr::Wide(v) => v[row],
            Repr::Packed { base, codes } => base + i64::from(codes[row]),
        }
    }

    /// Value at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        if self.nulls.as_ref().is_some_and(|b| bit(b, row)) {
            Value::Null
        } else {
            Value::Int(self.decode(row))
        }
    }

    /// Min/max over non-null values (storage index input). Precomputed at
    /// [`PlainIntCu::build`]; O(1).
    pub fn min_max(&self) -> Option<(i64, i64)> {
        self.bounds
    }

    /// Write one match bit per row into `sel` (which must be zeroed and
    /// sized to `len()`): branchless chunked compares over the packed
    /// column — the SIMD-friendly inner kernel of the paper's In-Memory
    /// Scan Engine. Frame-of-reference units compare 4-byte codes against
    /// the remapped literal; both layouts dispatch to an AVX-512 kernel
    /// when the host supports it. Null rows never match.
    pub fn scan_bitmap(&self, pred: &Predicate, sel: &mut SelBitmap) {
        debug_assert_eq!(sel.rows(), self.len());
        let target = match &pred.value {
            Value::Int(x) => *x,
            _ => return,
        };
        match &self.repr {
            Repr::Wide(values) => scan_words(values, target, pred.op, sel.words_mut()),
            Repr::Packed { base, codes } => {
                let code_max = (self.bounds.expect("packed unit has bounds").1 - base) as u32;
                match remap_to_codes(pred.op, target, *base, code_max) {
                    CodeCmp::NoneMatch => {} // sel stays all-zero
                    CodeCmp::AllMatch => {
                        for w in sel.words_mut() {
                            *w = u64::MAX;
                        }
                    }
                    CodeCmp::Cmp(op, t) => scan_words_u32(codes, t, op, sel.words_mut()),
                }
            }
        }
        if let Some(bits) = &self.nulls {
            sel.and_not_assign(bits);
        }
        sel.mask_tail();
    }

    /// Append the values at the given rows to `out` (batched gather: a
    /// tight independent-load loop the CPU can overlap, unlike dependent
    /// per-row [`PlainIntCu::get`] calls).
    pub fn gather(&self, rows: &[u32], out: &mut Vec<Value>) {
        out.reserve(rows.len());
        match (&self.repr, &self.nulls) {
            (Repr::Wide(values), None) => {
                out.extend(rows.iter().map(|&rn| Value::Int(values[rn as usize])));
            }
            (Repr::Wide(values), Some(bits)) => out.extend(rows.iter().map(|&rn| {
                if bit(bits, rn as usize) {
                    Value::Null
                } else {
                    Value::Int(values[rn as usize])
                }
            })),
            (Repr::Packed { base, codes }, None) => {
                out.extend(rows.iter().map(|&rn| Value::Int(base + i64::from(codes[rn as usize]))));
            }
            (Repr::Packed { base, codes }, Some(bits)) => out.extend(rows.iter().map(|&rn| {
                if bit(bits, rn as usize) {
                    Value::Null
                } else {
                    Value::Int(base + i64::from(codes[rn as usize]))
                }
            })),
        }
    }

    /// Fold the selected rows into `aggs` straight off the packed column:
    /// no row materialization, null rows counted but not summed.
    pub fn aggregate_masked(&self, sel: &SelBitmap, aggs: &mut crate::aggregate::Aggregates) {
        let mut min_max: Option<(i64, i64)> = None;
        for rn in sel.iter_ones() {
            let i = rn as usize;
            aggs.count += 1;
            if self.nulls.as_ref().is_some_and(|b| bit(b, i)) {
                continue;
            }
            let v = self.decode(i);
            aggs.non_null += 1;
            aggs.sum += i128::from(v);
            min_max = match min_max {
                None => Some((v, v)),
                Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
            };
        }
        if let Some((lo, hi)) = min_max {
            aggs.merge_min(&Value::Int(lo));
            aggs.merge_max(&Value::Int(hi));
        }
    }

    /// Approximate DRAM footprint of the encoded unit (budget accounting
    /// for the cold tier's eviction policy).
    pub(crate) fn approx_bytes(&self) -> usize {
        let data = match &self.repr {
            Repr::Wide(v) => v.len() * 8,
            Repr::Packed { codes, .. } => codes.len() * 4,
        };
        data + self.nulls.as_ref().map_or(0, |b| b.len() * 8) + 24
    }

    /// Serialize into `buf` (cold columnar page payload).
    pub(crate) fn to_bytes(&self, buf: &mut Vec<u8>) {
        use crate::coldstore::codec::*;
        match &self.repr {
            Repr::Wide(values) => {
                put_u8(buf, 0);
                put_u64(buf, values.len() as u64);
                for &v in values {
                    put_i64(buf, v);
                }
            }
            Repr::Packed { base, codes } => {
                put_u8(buf, 1);
                put_u64(buf, codes.len() as u64);
                put_i64(buf, *base);
                for &c in codes {
                    put_u32(buf, c);
                }
            }
        }
        match &self.nulls {
            None => put_u8(buf, 0),
            Some(words) => {
                put_u8(buf, 1);
                for &w in words {
                    put_u64(buf, w);
                }
            }
        }
        match self.bounds {
            None => put_u8(buf, 0),
            Some((lo, hi)) => {
                put_u8(buf, 1);
                put_i64(buf, lo);
                put_i64(buf, hi);
            }
        }
    }

    /// Decode a [`PlainIntCu::to_bytes`] payload. `None` = corrupt.
    pub(crate) fn from_bytes(r: &mut crate::coldstore::codec::Reader<'_>) -> Option<PlainIntCu> {
        let tag = r.u8()?;
        let rows = r.len_u64()?;
        let repr = match tag {
            0 => Repr::Wide((0..rows).map(|_| r.i64()).collect::<Option<Vec<_>>>()?),
            1 => {
                let base = r.i64()?;
                let codes = (0..rows).map(|_| r.u32()).collect::<Option<Vec<_>>>()?;
                Repr::Packed { base, codes }
            }
            _ => return None,
        };
        let nulls = match r.u8()? {
            0 => None,
            1 => Some((0..rows.div_ceil(64)).map(|_| r.u64()).collect::<Option<Vec<_>>>()?),
            _ => return None,
        };
        let bounds = match r.u8()? {
            0 => None,
            1 => Some((r.i64()?, r.i64()?)),
            _ => return None,
        };
        // A packed repr without bounds cannot exist (build derives the
        // base from the minimum); reject rather than panic later.
        if matches!(repr, Repr::Packed { .. }) && bounds.is_none() {
            return None;
        }
        Some(PlainIntCu { repr, nulls, bounds })
    }

    /// Append rows matching `pred` to `out` — the scalar reference path
    /// (row-at-a-time decode with a branch per row), kept as the parity
    /// baseline for the bitmap kernels and the BENCH trajectory.
    pub fn scan(&self, pred: &Predicate, out: &mut Vec<u32>) {
        let target = match &pred.value {
            Value::Int(x) => *x,
            _ => return,
        };
        macro_rules! scan_repr {
            ($values:expr, $decode:expr, $cmp:expr) => {
                match &self.nulls {
                    None => {
                        for (i, v) in $values.iter().enumerate() {
                            if $cmp($decode(v), target) {
                                out.push(i as u32);
                            }
                        }
                    }
                    Some(bits) => {
                        for (i, v) in $values.iter().enumerate() {
                            if !bit(bits, i) && $cmp($decode(v), target) {
                                out.push(i as u32);
                            }
                        }
                    }
                }
            };
        }
        macro_rules! scan_op {
            ($cmp:expr) => {
                match &self.repr {
                    Repr::Wide(values) => scan_repr!(values, |v: &i64| *v, $cmp),
                    Repr::Packed { base, codes } => {
                        scan_repr!(codes, |c: &u32| base + i64::from(*c), $cmp)
                    }
                }
            };
        }
        match pred.op {
            CmpOp::Eq => scan_op!(|v, t| v == t),
            CmpOp::Ne => scan_op!(|v, t| v != t),
            CmpOp::Lt => scan_op!(|v, t| v < t),
            CmpOp::Le => scan_op!(|v, t| v <= t),
            CmpOp::Gt => scan_op!(|v, t| v > t),
            CmpOp::Ge => scan_op!(|v, t| v >= t),
        }
    }
}

/// A predicate remapped into frame-of-reference code space.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CodeCmp {
    /// No non-null row can match (literal outside the code range).
    NoneMatch,
    /// Every non-null row matches.
    AllMatch,
    /// Compare codes against the remapped literal.
    Cmp(CmpOp, u32),
}

/// Remap `<column> op target` into code space, where `code = value - base`
/// and codes span `[0, code_max]`. Literals outside the range collapse the
/// whole unit to none/all — the kernel never widens a code back to i64.
fn remap_to_codes(op: CmpOp, target: i64, base: i64, code_max: u32) -> CodeCmp {
    let t = i128::from(target) - i128::from(base);
    let max = i128::from(code_max);
    let in_range = (0..=max).contains(&t);
    match op {
        CmpOp::Eq if in_range => CodeCmp::Cmp(CmpOp::Eq, t as u32),
        CmpOp::Eq => CodeCmp::NoneMatch,
        CmpOp::Ne if in_range => CodeCmp::Cmp(CmpOp::Ne, t as u32),
        CmpOp::Ne => CodeCmp::AllMatch,
        CmpOp::Lt if t <= 0 => CodeCmp::NoneMatch,
        CmpOp::Lt if t > max => CodeCmp::AllMatch,
        CmpOp::Lt => CodeCmp::Cmp(CmpOp::Lt, t as u32),
        CmpOp::Le if t < 0 => CodeCmp::NoneMatch,
        CmpOp::Le if t >= max => CodeCmp::AllMatch,
        CmpOp::Le => CodeCmp::Cmp(CmpOp::Le, t as u32),
        CmpOp::Gt if t >= max => CodeCmp::NoneMatch,
        CmpOp::Gt if t < 0 => CodeCmp::AllMatch,
        CmpOp::Gt => CodeCmp::Cmp(CmpOp::Gt, t as u32),
        CmpOp::Ge if t > max => CodeCmp::NoneMatch,
        CmpOp::Ge if t <= 0 => CodeCmp::AllMatch,
        CmpOp::Ge => CodeCmp::Cmp(CmpOp::Ge, t as u32),
    }
}

/// Compare every value against `target` under `op`, packing one match bit
/// per row into `words` (64 rows per word, tail bits undefined — the
/// caller masks them). Runtime-dispatches to the AVX-512 kernel on hosts
/// that have it; the portable kernel is the behavioral definition.
fn scan_words(values: &[i64], target: i64, op: CmpOp, words: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: the avx512f requirement was just verified at runtime.
        unsafe { avx512::scan_words(values, target, op, words) };
        return;
    }
    scan_words_portable(values, target, op, words);
}

/// [`scan_words`] over frame-of-reference codes (unsigned compares).
fn scan_words_u32(codes: &[u32], target: u32, op: CmpOp, words: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: the avx512f requirement was just verified at runtime.
        unsafe { avx512::scan_words_u32(codes, target, op, words) };
        return;
    }
    scan_words_u32_portable(codes, target, op, words);
}

macro_rules! portable_kernel {
    ($values:expr, $target:expr, $op:expr, $words:expr) => {{
        macro_rules! kernel {
            ($cmp:expr) => {
                for (w, chunk) in $values.chunks(64).enumerate() {
                    let mut m = 0u64;
                    for (b, &v) in chunk.iter().enumerate() {
                        m |= ($cmp(v, $target) as u64) << b;
                    }
                    $words[w] = m;
                }
            };
        }
        match $op {
            CmpOp::Eq => kernel!(|v, t| v == t),
            CmpOp::Ne => kernel!(|v, t| v != t),
            CmpOp::Lt => kernel!(|v, t| v < t),
            CmpOp::Le => kernel!(|v, t| v <= t),
            CmpOp::Gt => kernel!(|v, t| v > t),
            CmpOp::Ge => kernel!(|v, t| v >= t),
        }
    }};
}

/// Portable branchless kernel: one compare + shift/or per row, 64-row
/// accumulator words. Auto-vectorizes on most targets.
fn scan_words_portable(values: &[i64], target: i64, op: CmpOp, words: &mut [u64]) {
    portable_kernel!(values, target, op, words)
}

/// Portable u32 code kernel (same shape, unsigned compares).
fn scan_words_u32_portable(codes: &[u32], target: u32, op: CmpOp, words: &mut [u64]) {
    portable_kernel!(codes, target, op, words)
}

/// AVX-512 compare kernels: packed compares with the match mask coming
/// straight out of the mask registers — 8 i64 lanes (`__mmask8`) or 16
/// u32 code lanes (`__mmask16`) per instruction, mask fragments assembling
/// one 64-row selection word.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::{
        _mm512_cmpeq_epi64_mask, _mm512_cmpeq_epu32_mask, _mm512_cmpge_epi64_mask,
        _mm512_cmpge_epu32_mask, _mm512_cmpgt_epi64_mask, _mm512_cmpgt_epu32_mask,
        _mm512_cmple_epi64_mask, _mm512_cmple_epu32_mask, _mm512_cmplt_epi64_mask,
        _mm512_cmplt_epu32_mask, _mm512_cmpneq_epi64_mask, _mm512_cmpneq_epu32_mask,
        _mm512_loadu_epi32, _mm512_loadu_epi64, _mm512_set1_epi32, _mm512_set1_epi64,
    };

    use crate::predicate::CmpOp;

    macro_rules! simd_kernel {
        ($values:expr, $target:expr, $words:expr, $groups:expr, $lanes:expr,
         $load:ident, $cmp_vec:ident, $cmp_scalar:expr) => {{
            let mut chunks = $values.chunks_exact(64);
            let mut w = 0usize;
            for chunk in chunks.by_ref() {
                let mut m = 0u64;
                for g in 0..$groups {
                    // SAFETY: `g * $lanes + $lanes <= 64 == chunk.len()`.
                    let v = $load(chunk.as_ptr().add(g * $lanes).cast());
                    m |= ($cmp_vec(v, $target) as u64) << (g * $lanes);
                }
                $words[w] = m;
                w += 1;
            }
            let tail = chunks.remainder();
            if !tail.is_empty() {
                let mut m = 0u64;
                for (b, &v) in tail.iter().enumerate() {
                    m |= ($cmp_scalar(v) as u64) << b;
                }
                $words[w] = m;
            }
        }};
    }

    /// # Safety
    /// The caller must have verified `avx512f` is available.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scan_words(values: &[i64], target: i64, op: CmpOp, words: &mut [u64]) {
        let t = _mm512_set1_epi64(target);
        macro_rules! k {
            ($cmp_vec:ident, $cmp_scalar:expr) => {
                simd_kernel!(values, t, words, 8, 8, _mm512_loadu_epi64, $cmp_vec, $cmp_scalar)
            };
        }
        match op {
            CmpOp::Eq => k!(_mm512_cmpeq_epi64_mask, |v| v == target),
            CmpOp::Ne => k!(_mm512_cmpneq_epi64_mask, |v| v != target),
            CmpOp::Lt => k!(_mm512_cmplt_epi64_mask, |v| v < target),
            CmpOp::Le => k!(_mm512_cmple_epi64_mask, |v| v <= target),
            CmpOp::Gt => k!(_mm512_cmpgt_epi64_mask, |v| v > target),
            CmpOp::Ge => k!(_mm512_cmpge_epi64_mask, |v| v >= target),
        }
    }

    /// # Safety
    /// The caller must have verified `avx512f` is available.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scan_words_u32(codes: &[u32], target: u32, op: CmpOp, words: &mut [u64]) {
        let t = _mm512_set1_epi32(target as i32);
        macro_rules! k {
            ($cmp_vec:ident, $cmp_scalar:expr) => {
                simd_kernel!(codes, t, words, 4, 16, _mm512_loadu_epi32, $cmp_vec, $cmp_scalar)
            };
        }
        match op {
            CmpOp::Eq => k!(_mm512_cmpeq_epu32_mask, |v| v == target),
            CmpOp::Ne => k!(_mm512_cmpneq_epu32_mask, |v| v != target),
            CmpOp::Lt => k!(_mm512_cmplt_epu32_mask, |v| v < target),
            CmpOp::Le => k!(_mm512_cmple_epu32_mask, |v| v <= target),
            CmpOp::Gt => k!(_mm512_cmpgt_epu32_mask, |v| v > target),
            CmpOp::Ge => k!(_mm512_cmpge_epu32_mask, |v| v >= target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_storage::{ColumnType, Schema};

    fn pred(op: CmpOp, x: i64) -> Predicate {
        let s = Schema::of(&[("n", ColumnType::Int)]);
        Predicate::new(&s, "n", op, Value::Int(x)).unwrap()
    }

    const ALL_OPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

    #[test]
    fn roundtrip_without_nulls() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let cu = PlainIntCu::build(&vals);
        assert!(matches!(cu.repr, Repr::Packed { .. }), "small range packs");
        assert_eq!(cu.len(), 100);
        for i in 0..100 {
            assert_eq!(cu.get(i), Value::Int(i as i64));
        }
        assert_eq!(cu.min_max(), Some((0, 99)));
    }

    #[test]
    fn roundtrip_with_nulls() {
        let vals = vec![Value::Int(5), Value::Null, Value::Int(-3)];
        let cu = PlainIntCu::build(&vals);
        assert_eq!(cu.get(0), Value::Int(5));
        assert_eq!(cu.get(1), Value::Null);
        assert_eq!(cu.get(2), Value::Int(-3));
        assert_eq!(cu.min_max(), Some((-3, 5)));
    }

    #[test]
    fn wide_range_stays_wide() {
        let vals = vec![Value::Int(i64::MIN), Value::Null, Value::Int(i64::MAX)];
        let cu = PlainIntCu::build(&vals);
        assert!(matches!(cu.repr, Repr::Wide(_)));
        assert_eq!(cu.get(0), Value::Int(i64::MIN));
        assert_eq!(cu.get(1), Value::Null);
        assert_eq!(cu.get(2), Value::Int(i64::MAX));
        assert_eq!(cu.min_max(), Some((i64::MIN, i64::MAX)));
    }

    #[test]
    fn all_null_min_max() {
        let cu = PlainIntCu::build(&[Value::Null, Value::Null]);
        assert_eq!(cu.min_max(), None);
        assert_eq!(cu.get(0), Value::Null);
    }

    #[test]
    fn scan_operators() {
        let vals: Vec<Value> = [1i64, 5, 3, 5, 2].iter().copied().map(Value::Int).collect();
        let cu = PlainIntCu::build(&vals);
        let mut out = Vec::new();
        cu.scan(&pred(CmpOp::Eq, 5), &mut out);
        assert_eq!(out, vec![1, 3]);
        out.clear();
        cu.scan(&pred(CmpOp::Lt, 3), &mut out);
        assert_eq!(out, vec![0, 4]);
        out.clear();
        cu.scan(&pred(CmpOp::Ge, 3), &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn bitmap_kernel_matches_scalar() {
        let vals: Vec<Value> =
            (0..200).map(|i| if i % 7 == 0 { Value::Null } else { Value::Int(i % 13) }).collect();
        let cu = PlainIntCu::build(&vals);
        for op in ALL_OPS {
            let p = pred(op, 6);
            let mut scalar = Vec::new();
            cu.scan(&p, &mut scalar);
            let mut sel = SelBitmap::zeroes(cu.len());
            cu.scan_bitmap(&p, &mut sel);
            assert_eq!(sel.iter_ones().collect::<Vec<_>>(), scalar, "{op:?}");
        }
    }

    #[test]
    fn bitmap_kernel_matches_scalar_wide_and_out_of_range() {
        // Wide layout plus literals outside the packed code range (the
        // none/all collapse arms of the remap).
        let wide: Vec<Value> = (0..130)
            .map(|i| Value::Int(if i % 2 == 0 { i64::MIN + i } else { i64::MAX - i }))
            .collect();
        let packed: Vec<Value> = (0..130).map(|i| Value::Int(50 + i % 20)).collect();
        for vals in [wide, packed] {
            let cu = PlainIntCu::build(&vals);
            for target in [i64::MIN, -1, 0, 55, 69, 70, 1000, i64::MAX] {
                for op in ALL_OPS {
                    let p = pred(op, target);
                    let mut scalar = Vec::new();
                    cu.scan(&p, &mut scalar);
                    let mut sel = SelBitmap::zeroes(cu.len());
                    cu.scan_bitmap(&p, &mut sel);
                    assert_eq!(
                        sel.iter_ones().collect::<Vec<_>>(),
                        scalar,
                        "{op:?} target={target}"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_matches_get() {
        let wide = vec![Value::Int(i64::MIN), Value::Null, Value::Int(i64::MAX), Value::Int(0)];
        let packed: Vec<Value> =
            (0..100).map(|i| if i % 9 == 0 { Value::Null } else { Value::Int(i % 17) }).collect();
        for vals in [wide, packed] {
            let cu = PlainIntCu::build(&vals);
            let rns: Vec<u32> = (0..cu.len() as u32).step_by(3).collect();
            let mut gathered = Vec::new();
            cu.gather(&rns, &mut gathered);
            let individual: Vec<Value> = rns.iter().map(|&rn| cu.get(rn as usize)).collect();
            assert_eq!(gathered, individual);
        }
    }

    #[test]
    fn dispatched_kernel_matches_portable() {
        // Odd lengths exercise the SIMD tail path; values straddle the
        // target so every operator selects a different set.
        for len in [1usize, 7, 63, 64, 65, 200, 513] {
            let values: Vec<i64> = (0..len as i64).map(|i| (i * 37) % 101 - 50).collect();
            let codes: Vec<u32> = values.iter().map(|&v| (v + 50) as u32).collect();
            for op in ALL_OPS {
                let words = len.div_ceil(64);
                let mut dispatched = vec![0u64; words];
                let mut portable = vec![0u64; words];
                scan_words(&values, 3, op, &mut dispatched);
                scan_words_portable(&values, 3, op, &mut portable);
                let mut dispatched32 = vec![0u64; words];
                let mut portable32 = vec![0u64; words];
                scan_words_u32(&codes, 53, op, &mut dispatched32);
                scan_words_u32_portable(&codes, 53, op, &mut portable32);
                // Tail bits are undefined; compare only the defined rows.
                for i in 0..len {
                    let b = |w: &[u64]| w[i >> 6] >> (i & 63) & 1;
                    assert_eq!(b(&dispatched), b(&portable), "i64 len={len} op={op:?} row={i}");
                    assert_eq!(b(&dispatched32), b(&portable32), "u32 len={len} op={op:?} row={i}");
                }
            }
        }
    }

    #[test]
    fn remap_covers_collapse_arms() {
        use CodeCmp::*;
        // codes span [0, 10] over base 100 → values 100..=110.
        assert_eq!(remap_to_codes(CmpOp::Eq, 105, 100, 10), Cmp(CmpOp::Eq, 5));
        assert_eq!(remap_to_codes(CmpOp::Eq, 99, 100, 10), NoneMatch);
        assert_eq!(remap_to_codes(CmpOp::Ne, 111, 100, 10), AllMatch);
        assert_eq!(remap_to_codes(CmpOp::Lt, 100, 100, 10), NoneMatch);
        assert_eq!(remap_to_codes(CmpOp::Lt, 111, 100, 10), AllMatch);
        assert_eq!(remap_to_codes(CmpOp::Le, 110, 100, 10), AllMatch);
        assert_eq!(remap_to_codes(CmpOp::Gt, 110, 100, 10), NoneMatch);
        assert_eq!(remap_to_codes(CmpOp::Ge, 100, 100, 10), AllMatch);
        assert_eq!(remap_to_codes(CmpOp::Ge, 105, 100, 10), Cmp(CmpOp::Ge, 5));
    }

    #[test]
    fn masked_aggregate_counts_nulls() {
        let vals = vec![Value::Int(5), Value::Null, Value::Int(-3), Value::Int(9)];
        let cu = PlainIntCu::build(&vals);
        let mut sel = SelBitmap::ones(4);
        sel.clear(3); // drop the 9
        let mut aggs = crate::aggregate::Aggregates::default();
        cu.aggregate_masked(&sel, &mut aggs);
        assert_eq!(aggs.count, 3, "null row still counted by COUNT(*)");
        assert_eq!(aggs.non_null, 2);
        assert_eq!(aggs.sum, 2);
        assert_eq!(aggs.min, Some(Value::Int(-3)));
        assert_eq!(aggs.max, Some(Value::Int(5)));
    }
}
