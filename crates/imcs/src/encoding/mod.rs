//! IMCU column encodings: plain packed integers, run-length-encoded
//! integers, dictionary-encoded strings (paper §II.B, "IMCUs employ
//! techniques like data compression and encoding").

pub mod dict;
pub mod plain;
pub mod rle;
