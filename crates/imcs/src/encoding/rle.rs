//! Run-length-encoded integer column unit.
//!
//! Chosen by the encoding selector when a column's values form long runs
//! (timestamps, status flags, partition keys). Predicate evaluation tests
//! one value per run instead of one per row.

use imadg_storage::Value;

use crate::bitmap::SelBitmap;
use crate::predicate::Predicate;

/// One run: `len` consecutive rows share `value` (`None` = NULL).
#[derive(Debug, Clone, PartialEq)]
struct Run {
    value: Option<i64>,
    len: u32,
}

/// RLE integer column unit.
#[derive(Debug, Clone)]
pub struct RleIntCu {
    runs: Vec<Run>,
    rows: usize,
}

impl RleIntCu {
    /// Encode a slice of values (`Int` or `Null`).
    pub fn build(values: &[Value]) -> RleIntCu {
        let mut runs: Vec<Run> = Vec::new();
        for v in values {
            let cur = match v {
                Value::Int(x) => Some(*x),
                _ => None,
            };
            match runs.last_mut() {
                Some(r) if r.value == cur => r.len += 1,
                _ => runs.push(Run { value: cur, len: 1 }),
            }
        }
        RleIntCu { runs, rows: values.len() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of runs (compression diagnostics).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Value at `row` (run walk; O(runs)).
    pub fn get(&self, row: usize) -> Value {
        debug_assert!(row < self.rows);
        let mut at = 0usize;
        for r in &self.runs {
            if row < at + r.len as usize {
                return match r.value {
                    Some(x) => Value::Int(x),
                    None => Value::Null,
                };
            }
            at += r.len as usize;
        }
        unreachable!("row within bounds")
    }

    /// Min/max over non-null values.
    pub fn min_max(&self) -> Option<(i64, i64)> {
        let mut it = self.runs.iter().filter_map(|r| r.value);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for x in it {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        Some((lo, hi))
    }

    /// Append rows matching `pred` to `out`: one predicate evaluation per
    /// run, then a row-id burst for matching runs (scalar reference path).
    pub fn scan(&self, pred: &Predicate, out: &mut Vec<u32>) {
        let mut at = 0u32;
        for r in &self.runs {
            let matched = match r.value {
                Some(x) => pred.eval_value(&Value::Int(x)),
                None => false,
            };
            if matched {
                out.extend(at..at + r.len);
            }
            at += r.len;
        }
    }

    /// Append the values at the given rows to `out`. `rows` must be
    /// ascending (selection bitmaps iterate in row order), letting one
    /// forward run walk serve the whole batch — O(runs + rows) instead of
    /// O(runs) per row through [`RleIntCu::get`].
    pub fn gather(&self, rows: &[u32], out: &mut Vec<Value>) {
        out.reserve(rows.len());
        let mut runs = self.runs.iter();
        let mut run = runs.next();
        let mut at = 0u32; // first row of the current run
        for &rn in rows {
            debug_assert!((rn as usize) < self.rows);
            while let Some(r) = run {
                if rn < at + r.len {
                    break;
                }
                at += r.len;
                run = runs.next();
            }
            out.push(match run.expect("row within bounds").value {
                Some(x) => Value::Int(x),
                None => Value::Null,
            });
        }
    }

    /// Write one match bit per row into `sel` (zeroed, sized to `len()`):
    /// one predicate evaluation per run, then whole-word bit bursts for
    /// matching runs.
    pub fn scan_bitmap(&self, pred: &Predicate, sel: &mut SelBitmap) {
        debug_assert_eq!(sel.rows(), self.len());
        let mut at = 0usize;
        for r in &self.runs {
            let matched = match r.value {
                Some(x) => pred.eval_value(&Value::Int(x)),
                None => false,
            };
            if matched {
                sel.set_range(at, at + r.len as usize);
            }
            at += r.len as usize;
        }
    }

    /// Fold the selected rows into `aggs` run-at-a-time: a masked popcount
    /// per run replaces per-row value decodes entirely.
    pub fn aggregate_masked(&self, sel: &SelBitmap, aggs: &mut crate::aggregate::Aggregates) {
        let mut at = 0usize;
        let mut min_max: Option<(i64, i64)> = None;
        for r in &self.runs {
            let n = sel.count_range(at, at + r.len as usize) as u64;
            at += r.len as usize;
            if n == 0 {
                continue;
            }
            aggs.count += n;
            if let Some(x) = r.value {
                aggs.non_null += n;
                aggs.sum += i128::from(x) * i128::from(n);
                min_max = match min_max {
                    None => Some((x, x)),
                    Some((lo, hi)) => Some((lo.min(x), hi.max(x))),
                };
            }
        }
        if let Some((lo, hi)) = min_max {
            aggs.merge_min(&Value::Int(lo));
            aggs.merge_max(&Value::Int(hi));
        }
    }

    /// Approximate DRAM footprint of the encoded unit.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.runs.len() * 16 + 16
    }

    /// Serialize into `buf` (cold columnar page payload).
    pub(crate) fn to_bytes(&self, buf: &mut Vec<u8>) {
        use crate::coldstore::codec::*;
        put_u64(buf, self.rows as u64);
        put_u32(buf, self.runs.len() as u32);
        for run in &self.runs {
            match run.value {
                None => {
                    put_u8(buf, 0);
                    put_i64(buf, 0);
                }
                Some(x) => {
                    put_u8(buf, 1);
                    put_i64(buf, x);
                }
            }
            put_u32(buf, run.len);
        }
    }

    /// Decode a [`RleIntCu::to_bytes`] payload. `None` = corrupt.
    pub(crate) fn from_bytes(r: &mut crate::coldstore::codec::Reader<'_>) -> Option<RleIntCu> {
        let rows = r.len_u64()?;
        let run_count = r.len_u32()?;
        let mut runs = Vec::with_capacity(run_count);
        let mut covered = 0u64;
        for _ in 0..run_count {
            let flag = r.u8()?;
            let x = r.i64()?;
            let len = r.u32()?;
            let value = match flag {
                0 => None,
                1 => Some(x),
                _ => return None,
            };
            covered = covered.checked_add(u64::from(len))?;
            runs.push(Run { value, len });
        }
        // Runs must tile the row range exactly or get/gather walk off the
        // end.
        if covered != rows as u64 {
            return None;
        }
        Some(RleIntCu { runs, rows })
    }

    /// Would RLE compress `values` meaningfully? (encoding selector hook)
    ///
    /// Probes a 256-value prefix instead of the whole column: population is
    /// on the repopulation hot path and run-structure is homogeneous in
    /// practice.
    pub fn worthwhile(values: &[Value]) -> bool {
        if values.len() < 64 {
            return false;
        }
        let sample = &values[..values.len().min(256)];
        let mut transitions = 0usize;
        for w in sample.windows(2) {
            if w[0] != w[1] {
                transitions += 1;
            }
        }
        // Average sampled run length ≥ 4 → worthwhile.
        transitions < sample.len() / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use imadg_storage::{ColumnType, Schema};

    fn pred(op: CmpOp, x: i64) -> Predicate {
        let s = Schema::of(&[("n", ColumnType::Int)]);
        Predicate::new(&s, "n", op, Value::Int(x)).unwrap()
    }

    #[test]
    fn roundtrip_and_compression() {
        let vals: Vec<Value> = [1, 1, 1, 2, 2, 3].iter().map(|&x| Value::Int(x)).collect();
        let cu = RleIntCu::build(&vals);
        assert_eq!(cu.len(), 6);
        assert_eq!(cu.run_count(), 3);
        for (i, expect) in [1i64, 1, 1, 2, 2, 3].iter().enumerate() {
            assert_eq!(cu.get(i), Value::Int(*expect));
        }
        assert_eq!(cu.min_max(), Some((1, 3)));
    }

    #[test]
    fn nulls_form_runs() {
        let vals = vec![Value::Null, Value::Null, Value::Int(7)];
        let cu = RleIntCu::build(&vals);
        assert_eq!(cu.run_count(), 2);
        assert_eq!(cu.get(0), Value::Null);
        assert_eq!(cu.get(2), Value::Int(7));
        assert_eq!(cu.min_max(), Some((7, 7)));
    }

    #[test]
    fn scan_bursts_matching_runs() {
        let vals: Vec<Value> = [5, 5, 1, 5, 5, 5].iter().map(|&x| Value::Int(x)).collect();
        let cu = RleIntCu::build(&vals);
        let mut out = Vec::new();
        cu.scan(&pred(CmpOp::Eq, 5), &mut out);
        assert_eq!(out, vec![0, 1, 3, 4, 5]);
        out.clear();
        cu.scan(&pred(CmpOp::Lt, 5), &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn bitmap_kernel_matches_scalar() {
        let vals: Vec<Value> = (0..300)
            .map(|i| if (i / 20) % 4 == 3 { Value::Null } else { Value::Int(i / 20) })
            .collect();
        let cu = RleIntCu::build(&vals);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let p = pred(op, 7);
            let mut scalar = Vec::new();
            cu.scan(&p, &mut scalar);
            let mut sel = SelBitmap::zeroes(cu.len());
            cu.scan_bitmap(&p, &mut sel);
            assert_eq!(sel.iter_ones().collect::<Vec<_>>(), scalar, "{op:?}");
        }
    }

    #[test]
    fn masked_aggregate_per_run() {
        let vals: Vec<Value> = [Some(5), Some(5), None, None, Some(2), Some(2), Some(2)]
            .iter()
            .map(|v| match v {
                Some(x) => Value::Int(*x),
                None => Value::Null,
            })
            .collect();
        let cu = RleIntCu::build(&vals);
        let mut sel = SelBitmap::ones(7);
        sel.clear(0); // drop one 5
        sel.clear(6); // drop one 2
        let mut aggs = crate::aggregate::Aggregates::default();
        cu.aggregate_masked(&sel, &mut aggs);
        assert_eq!(aggs.count, 5);
        assert_eq!(aggs.non_null, 3);
        assert_eq!(aggs.sum, 9);
        assert_eq!(aggs.min, Some(Value::Int(2)));
        assert_eq!(aggs.max, Some(Value::Int(5)));
    }

    #[test]
    fn worthwhile_heuristic() {
        let runs: Vec<Value> = (0..256).map(|i| Value::Int(i / 32)).collect();
        assert!(RleIntCu::worthwhile(&runs));
        let distinct: Vec<Value> = (0..256).map(Value::Int).collect();
        assert!(!RleIntCu::worthwhile(&distinct));
        assert!(!RleIntCu::worthwhile(&runs[..10]), "tiny units stay plain");
    }
}
