//! Dictionary-encoded string column unit.
//!
//! The dominant IMCU encoding for varchar columns: distinct values live in
//! a sorted dictionary, rows store fixed-width codes. Equality predicates
//! reduce to one dictionary binary-search plus an integer-code scan; range
//! predicates map to code-range scans because the dictionary is sorted.

use std::sync::Arc;

use imadg_storage::Value;

use crate::bitmap::SelBitmap;
use crate::predicate::{CmpOp, Predicate};

/// Code reserved for NULL.
const NULL_CODE: u32 = u32::MAX;

/// Dictionary-encoded string column unit.
#[derive(Debug, Clone)]
pub struct DictStrCu {
    /// Sorted distinct values.
    dict: Vec<Arc<str>>,
    /// Per-row dictionary codes (`NULL_CODE` = NULL).
    codes: Vec<u32>,
}

impl DictStrCu {
    /// Encode a slice of values (`Str` or `Null`).
    ///
    /// Hash-interns the distinct values first (O(n)), sorts only the
    /// distinct set, then remaps codes — population builds whole IMCUs, so
    /// this path must stay cheap (rebuild cost is the edge-IMCU churn cost
    /// of the paper's Fig. 10).
    pub fn build(values: &[Value]) -> DictStrCu {
        let mut interner: imadg_common::FxHashMap<Arc<str>, u32> =
            imadg_common::FxHashMap::default();
        let mut provisional: Vec<u32> = Vec::with_capacity(values.len());
        for v in values {
            match v {
                Value::Str(s) => {
                    let next = interner.len() as u32;
                    let id = *interner.entry(s.clone()).or_insert(next);
                    provisional.push(id);
                }
                _ => provisional.push(NULL_CODE),
            }
        }
        let mut entries: Vec<(Arc<str>, u32)> = interner.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut remap = vec![0u32; entries.len()];
        for (sorted_idx, (_, prov)) in entries.iter().enumerate() {
            remap[*prov as usize] = sorted_idx as u32;
        }
        let codes = provisional
            .into_iter()
            .map(|p| if p == NULL_CODE { NULL_CODE } else { remap[p as usize] })
            .collect();
        let dict = entries.into_iter().map(|(s, _)| s).collect();
        DictStrCu { dict, codes }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Distinct-value count.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// Value at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        match self.codes[row] {
            NULL_CODE => Value::Null,
            c => Value::Str(self.dict[c as usize].clone()),
        }
    }

    /// Append the values at the given rows to `out` (batched gather: the
    /// code loads are independent, so the CPU overlaps the cache misses).
    pub fn gather(&self, rows: &[u32], out: &mut Vec<Value>) {
        out.reserve(rows.len());
        out.extend(rows.iter().map(|&rn| match self.codes[rn as usize] {
            NULL_CODE => Value::Null,
            c => Value::Str(self.dict[c as usize].clone()),
        }));
    }

    /// Lexicographic min/max over non-null values.
    pub fn min_max(&self) -> Option<(Arc<str>, Arc<str>)> {
        // Sorted dictionary: endpoints are the extremes — but only if some
        // row references them; every dict entry came from a row, so yes.
        Some((self.dict.first()?.clone(), self.dict.last()?.clone()))
    }

    /// Translate `pred` into an inclusive code range `[lo, hi]` plus an
    /// excluded exact code (for `Ne`; [`NULL_CODE`] when nothing is
    /// excluded — NULL never matches anyway). `None` means no row can
    /// match. The empty-dictionary guard sits *above* the bound
    /// computation so the `wrapping_sub`-based bounds are never formed for
    /// an empty dict.
    fn code_bounds(&self, pred: &Predicate) -> Option<(u32, u32, u32)> {
        if self.dict.is_empty() {
            return None;
        }
        let target = match &pred.value {
            Value::Str(s) => s.as_ref(),
            _ => return None,
        };
        let last = (self.dict.len() - 1) as u32;
        // Position of the literal in code space.
        let pos = self.dict.binary_search_by(|d| d.as_ref().cmp(target));
        match (pred.op, pos) {
            (CmpOp::Eq, Ok(c)) => Some((c as u32, c as u32, NULL_CODE)),
            (CmpOp::Eq, Err(_)) => None,
            (CmpOp::Ne, Ok(c)) => Some((0, last, c as u32)),
            (CmpOp::Ne, Err(_)) => Some((0, last, NULL_CODE)),
            (CmpOp::Lt, Ok(c) | Err(c)) | (CmpOp::Le, Err(c)) => {
                if c == 0 {
                    None
                } else {
                    Some((0, (c - 1) as u32, NULL_CODE))
                }
            }
            (CmpOp::Le, Ok(c)) => Some((0, c as u32, NULL_CODE)),
            (CmpOp::Gt, Ok(c)) => {
                if c as u32 >= last {
                    None
                } else {
                    Some((c as u32 + 1, last, NULL_CODE))
                }
            }
            (CmpOp::Gt, Err(c)) | (CmpOp::Ge, Err(c)) => {
                if c >= self.dict.len() {
                    None
                } else {
                    Some((c as u32, last, NULL_CODE))
                }
            }
            (CmpOp::Ge, Ok(c)) => Some((c as u32, last, NULL_CODE)),
        }
    }

    /// Write one match bit per row into `sel` (zeroed, sized to `len()`):
    /// one dictionary binary-search turns the literal into code bounds,
    /// then the row loop is branchless u32 compares over the packed codes.
    /// `NULL_CODE` rows never match (they exceed every valid `hi`).
    pub fn scan_bitmap(&self, pred: &Predicate, sel: &mut SelBitmap) {
        debug_assert_eq!(sel.rows(), self.len());
        let Some((lo, hi, exclude)) = self.code_bounds(pred) else {
            return;
        };
        let words = sel.words_mut();
        for (w, chunk) in self.codes.chunks(64).enumerate() {
            let mut m = 0u64;
            for (b, &c) in chunk.iter().enumerate() {
                m |= (((c >= lo) & (c <= hi) & (c != exclude)) as u64) << b;
            }
            words[w] = m;
        }
        sel.mask_tail();
    }

    /// Fold the selected rows into `aggs` in code space: null detection
    /// and min/max tracking happen on codes, and only the final extremes
    /// touch the dictionary.
    pub fn aggregate_masked(&self, sel: &SelBitmap, aggs: &mut crate::aggregate::Aggregates) {
        let mut min_max: Option<(u32, u32)> = None;
        for rn in sel.iter_ones() {
            let c = self.codes[rn as usize];
            aggs.count += 1;
            if c == NULL_CODE {
                continue;
            }
            aggs.non_null += 1;
            min_max = match min_max {
                None => Some((c, c)),
                Some((lo, hi)) => Some((lo.min(c), hi.max(c))),
            };
        }
        if let Some((lo, hi)) = min_max {
            aggs.merge_min(&Value::Str(self.dict[lo as usize].clone()));
            aggs.merge_max(&Value::Str(self.dict[hi as usize].clone()));
        }
    }

    /// Approximate DRAM footprint of the encoded unit.
    pub(crate) fn approx_bytes(&self) -> usize {
        let dict: usize = self.dict.iter().map(|s| s.len() + 16).sum();
        dict + self.codes.len() * 4 + 16
    }

    /// Serialize into `buf` (cold columnar page payload).
    pub(crate) fn to_bytes(&self, buf: &mut Vec<u8>) {
        use crate::coldstore::codec::*;
        put_u32(buf, self.dict.len() as u32);
        for s in &self.dict {
            put_str(buf, s);
        }
        put_u64(buf, self.codes.len() as u64);
        for &c in &self.codes {
            put_u32(buf, c);
        }
    }

    /// Decode a [`DictStrCu::to_bytes`] payload. `None` = corrupt.
    pub(crate) fn from_bytes(r: &mut crate::coldstore::codec::Reader<'_>) -> Option<DictStrCu> {
        let dict_len = r.len_u32()?;
        let mut dict: Vec<Arc<str>> = Vec::with_capacity(dict_len);
        for _ in 0..dict_len {
            dict.push(r.str()?.into());
        }
        // The dictionary must be sorted — code_bounds binary-searches it.
        if dict.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        let rows = r.len_u64()?;
        let mut codes = Vec::with_capacity(rows);
        for _ in 0..rows {
            let c = r.u32()?;
            if c != NULL_CODE && c as usize >= dict_len {
                return None;
            }
            codes.push(c);
        }
        Some(DictStrCu { dict, codes })
    }

    /// Append rows matching `pred` to `out` — the scalar reference path
    /// (kept as the parity baseline for the bitmap kernel).
    pub fn scan(&self, pred: &Predicate, out: &mut Vec<u32>) {
        let Some((lo, hi, exclude)) = self.code_bounds(pred) else {
            return;
        };
        for (i, &c) in self.codes.iter().enumerate() {
            if c != NULL_CODE && c >= lo && c <= hi && c != exclude {
                out.push(i as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_storage::{ColumnType, Schema};

    fn pred(op: CmpOp, s: &str) -> Predicate {
        let sc = Schema::of(&[("c", ColumnType::Varchar)]);
        Predicate::new(&sc, "c", op, Value::str(s)).unwrap()
    }

    fn cu(vals: &[&str]) -> DictStrCu {
        let v: Vec<Value> = vals.iter().map(|s| Value::str(*s)).collect();
        DictStrCu::build(&v)
    }

    #[test]
    fn roundtrip() {
        let c = cu(&["b", "a", "b", "c"]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.get(0), Value::str("b"));
        assert_eq!(c.get(1), Value::str("a"));
        assert_eq!(c.get(3), Value::str("c"));
        let (lo, hi) = c.min_max().unwrap();
        assert_eq!((lo.as_ref(), hi.as_ref()), ("a", "c"));
    }

    #[test]
    fn nulls_roundtrip_and_never_match() {
        let c = DictStrCu::build(&[Value::str("a"), Value::Null]);
        assert_eq!(c.get(1), Value::Null);
        let mut out = Vec::new();
        c.scan(&pred(CmpOp::Ne, "zzz"), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn eq_scan() {
        let c = cu(&["x", "y", "x", "z"]);
        let mut out = Vec::new();
        c.scan(&pred(CmpOp::Eq, "x"), &mut out);
        assert_eq!(out, vec![0, 2]);
        out.clear();
        c.scan(&pred(CmpOp::Eq, "absent"), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn range_scans_via_sorted_codes() {
        let c = cu(&["b", "d", "a", "c"]);
        let collect = |op, s: &str| {
            let mut out = Vec::new();
            c.scan(&pred(op, s), &mut out);
            out
        };
        assert_eq!(collect(CmpOp::Lt, "c"), vec![0, 2]); // b, a
        assert_eq!(collect(CmpOp::Le, "c"), vec![0, 2, 3]);
        assert_eq!(collect(CmpOp::Gt, "b"), vec![1, 3]); // d, c
        assert_eq!(collect(CmpOp::Ge, "b"), vec![0, 1, 3]);
        assert_eq!(collect(CmpOp::Ne, "b"), vec![1, 2, 3]);
        // Literal between dictionary entries.
        assert_eq!(collect(CmpOp::Lt, "bb"), vec![0, 2]);
        assert_eq!(collect(CmpOp::Ge, "bb"), vec![1, 3]);
        // Out-of-range literals.
        assert!(collect(CmpOp::Lt, "a").is_empty());
        assert!(collect(CmpOp::Gt, "d").is_empty());
        assert_eq!(collect(CmpOp::Ne, "nope").len(), 4);
    }

    #[test]
    fn empty_dict_scans_nothing() {
        let c = DictStrCu::build(&[Value::Null, Value::Null]);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let mut out = Vec::new();
            c.scan(&pred(op, "x"), &mut out);
            assert!(out.is_empty(), "{op:?}");
            let mut sel = SelBitmap::zeroes(c.len());
            c.scan_bitmap(&pred(op, "x"), &mut sel);
            assert!(sel.is_empty(), "{op:?}");
        }
    }

    #[test]
    fn bitmap_kernel_matches_scalar() {
        let vals: Vec<Value> = (0..150)
            .map(|i| if i % 11 == 0 { Value::Null } else { Value::str(format!("s{}", i % 9)) })
            .collect();
        let c = DictStrCu::build(&vals);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for lit in ["s0", "s4", "s8", "absent", ""] {
                let p = pred(op, lit);
                let mut scalar = Vec::new();
                c.scan(&p, &mut scalar);
                let mut sel = SelBitmap::zeroes(c.len());
                c.scan_bitmap(&p, &mut sel);
                assert_eq!(sel.iter_ones().collect::<Vec<_>>(), scalar, "{op:?} {lit:?}");
            }
        }
    }

    #[test]
    fn masked_aggregate_in_code_space() {
        let c = DictStrCu::build(&[Value::str("m"), Value::Null, Value::str("a"), Value::str("z")]);
        let mut sel = SelBitmap::ones(4);
        sel.clear(3); // drop the "z"
        let mut aggs = crate::aggregate::Aggregates::default();
        c.aggregate_masked(&sel, &mut aggs);
        assert_eq!(aggs.count, 3);
        assert_eq!(aggs.non_null, 2);
        assert_eq!(aggs.min, Some(Value::str("a")));
        assert_eq!(aggs.max, Some(Value::str("m")));
    }
}
