//! Dictionary-encoded string column unit.
//!
//! The dominant IMCU encoding for varchar columns: distinct values live in
//! a sorted dictionary, rows store fixed-width codes. Equality predicates
//! reduce to one dictionary binary-search plus an integer-code scan; range
//! predicates map to code-range scans because the dictionary is sorted.

use std::sync::Arc;

use imadg_storage::Value;

use crate::predicate::{CmpOp, Predicate};

/// Code reserved for NULL.
const NULL_CODE: u32 = u32::MAX;

/// Dictionary-encoded string column unit.
#[derive(Debug, Clone)]
pub struct DictStrCu {
    /// Sorted distinct values.
    dict: Vec<Arc<str>>,
    /// Per-row dictionary codes (`NULL_CODE` = NULL).
    codes: Vec<u32>,
}

impl DictStrCu {
    /// Encode a slice of values (`Str` or `Null`).
    ///
    /// Hash-interns the distinct values first (O(n)), sorts only the
    /// distinct set, then remaps codes — population builds whole IMCUs, so
    /// this path must stay cheap (rebuild cost is the edge-IMCU churn cost
    /// of the paper's Fig. 10).
    pub fn build(values: &[Value]) -> DictStrCu {
        let mut interner: imadg_common::FxHashMap<Arc<str>, u32> =
            imadg_common::FxHashMap::default();
        let mut provisional: Vec<u32> = Vec::with_capacity(values.len());
        for v in values {
            match v {
                Value::Str(s) => {
                    let next = interner.len() as u32;
                    let id = *interner.entry(s.clone()).or_insert(next);
                    provisional.push(id);
                }
                _ => provisional.push(NULL_CODE),
            }
        }
        let mut entries: Vec<(Arc<str>, u32)> = interner.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut remap = vec![0u32; entries.len()];
        for (sorted_idx, (_, prov)) in entries.iter().enumerate() {
            remap[*prov as usize] = sorted_idx as u32;
        }
        let codes = provisional
            .into_iter()
            .map(|p| if p == NULL_CODE { NULL_CODE } else { remap[p as usize] })
            .collect();
        let dict = entries.into_iter().map(|(s, _)| s).collect();
        DictStrCu { dict, codes }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Distinct-value count.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// Value at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        match self.codes[row] {
            NULL_CODE => Value::Null,
            c => Value::Str(self.dict[c as usize].clone()),
        }
    }

    /// Lexicographic min/max over non-null values.
    pub fn min_max(&self) -> Option<(Arc<str>, Arc<str>)> {
        // Sorted dictionary: endpoints are the extremes — but only if some
        // row references them; every dict entry came from a row, so yes.
        Some((self.dict.first()?.clone(), self.dict.last()?.clone()))
    }

    /// Append rows matching `pred` to `out`.
    ///
    /// The comparison happens in code space: the sorted dictionary turns
    /// the literal into a code bound, then the row loop is pure integer
    /// compares.
    pub fn scan(&self, pred: &Predicate, out: &mut Vec<u32>) {
        let target = match &pred.value {
            Value::Str(s) => s.as_ref(),
            _ => return,
        };
        // Position of the literal in code space.
        let pos = self.dict.binary_search_by(|d| d.as_ref().cmp(target));
        // For each operator compute an inclusive code range [lo, hi] of
        // matching codes, plus an optional excluded exact code (for Ne).
        let (lo, hi, exclude) = match (pred.op, pos) {
            (CmpOp::Eq, Ok(c)) => (c as u32, c as u32, None),
            (CmpOp::Eq, Err(_)) => return,
            (CmpOp::Ne, Ok(c)) => (0, self.dict.len().wrapping_sub(1) as u32, Some(c as u32)),
            (CmpOp::Ne, Err(_)) => (0, self.dict.len().wrapping_sub(1) as u32, None),
            (CmpOp::Lt, Ok(c)) | (CmpOp::Lt, Err(c)) => {
                if c == 0 {
                    return;
                }
                (0, (c - 1) as u32, None)
            }
            (CmpOp::Le, Ok(c)) => (0, c as u32, None),
            (CmpOp::Le, Err(c)) => {
                if c == 0 {
                    return;
                }
                (0, (c - 1) as u32, None)
            }
            (CmpOp::Gt, Ok(c)) => {
                if c + 1 >= self.dict.len() {
                    return;
                }
                ((c + 1) as u32, (self.dict.len() - 1) as u32, None)
            }
            (CmpOp::Gt, Err(c)) | (CmpOp::Ge, Err(c)) => {
                if c >= self.dict.len() {
                    return;
                }
                (c as u32, (self.dict.len() - 1) as u32, None)
            }
            (CmpOp::Ge, Ok(c)) => (c as u32, (self.dict.len() - 1) as u32, None),
        };
        if self.dict.is_empty() {
            return;
        }
        for (i, &c) in self.codes.iter().enumerate() {
            if c != NULL_CODE && c >= lo && c <= hi && Some(c) != exclude {
                out.push(i as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_storage::{ColumnType, Schema};

    fn pred(op: CmpOp, s: &str) -> Predicate {
        let sc = Schema::of(&[("c", ColumnType::Varchar)]);
        Predicate::new(&sc, "c", op, Value::str(s)).unwrap()
    }

    fn cu(vals: &[&str]) -> DictStrCu {
        let v: Vec<Value> = vals.iter().map(|s| Value::str(*s)).collect();
        DictStrCu::build(&v)
    }

    #[test]
    fn roundtrip() {
        let c = cu(&["b", "a", "b", "c"]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.get(0), Value::str("b"));
        assert_eq!(c.get(1), Value::str("a"));
        assert_eq!(c.get(3), Value::str("c"));
        let (lo, hi) = c.min_max().unwrap();
        assert_eq!((lo.as_ref(), hi.as_ref()), ("a", "c"));
    }

    #[test]
    fn nulls_roundtrip_and_never_match() {
        let c = DictStrCu::build(&[Value::str("a"), Value::Null]);
        assert_eq!(c.get(1), Value::Null);
        let mut out = Vec::new();
        c.scan(&pred(CmpOp::Ne, "zzz"), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn eq_scan() {
        let c = cu(&["x", "y", "x", "z"]);
        let mut out = Vec::new();
        c.scan(&pred(CmpOp::Eq, "x"), &mut out);
        assert_eq!(out, vec![0, 2]);
        out.clear();
        c.scan(&pred(CmpOp::Eq, "absent"), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn range_scans_via_sorted_codes() {
        let c = cu(&["b", "d", "a", "c"]);
        let collect = |op, s: &str| {
            let mut out = Vec::new();
            c.scan(&pred(op, s), &mut out);
            out
        };
        assert_eq!(collect(CmpOp::Lt, "c"), vec![0, 2]); // b, a
        assert_eq!(collect(CmpOp::Le, "c"), vec![0, 2, 3]);
        assert_eq!(collect(CmpOp::Gt, "b"), vec![1, 3]); // d, c
        assert_eq!(collect(CmpOp::Ge, "b"), vec![0, 1, 3]);
        assert_eq!(collect(CmpOp::Ne, "b"), vec![1, 2, 3]);
        // Literal between dictionary entries.
        assert_eq!(collect(CmpOp::Lt, "bb"), vec![0, 2]);
        assert_eq!(collect(CmpOp::Ge, "bb"), vec![1, 3]);
        // Out-of-range literals.
        assert!(collect(CmpOp::Lt, "a").is_empty());
        assert!(collect(CmpOp::Gt, "d").is_empty());
        assert_eq!(collect(CmpOp::Ne, "nope").len(), 4);
    }
}
