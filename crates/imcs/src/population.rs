//! Population and repopulation of the IMCS.
//!
//! "A segment loader process chunks up an object into ranges of data blocks
//! and background population worker processes construct IMCUs for the DBA
//! ranges" (paper §III.A). On the standby, the snapshot SCN of every unit
//! *must* be a published QuerySCN, captured outside a quiesce period; on
//! the primary, any current SCN is a consistent snapshot.
//!
//! Protocol per chunk (standby):
//! 1. take the quiesce lock shared; read the published QuerySCN `S`;
//!    **register a pending handle** claiming the chunk's DBA range — from
//!    this instant, invalidation flushes for commits > `S` land in the
//!    handle's SMU; release the lock;
//! 2. build the IMCU at snapshot `S` (concurrent redo apply is invisible
//!    to the CR scan);
//! 3. swap the built unit into the handle; SMU entries ≤ `S` are absorbed,
//!    newer ones carry over.

use std::collections::HashSet;
use std::sync::Arc;

use imadg_common::metrics::PopulationMetrics;
use imadg_common::{
    CpuAccount, Error, ImcsConfig, ObjectId, QueryScnCell, QuiesceLock, Result, Scn, ScnService,
};
use imadg_storage::Store;
use parking_lot::RwLock;

use crate::imcs_store::{ImcsStore, ImcuHandle};
use crate::imcu::Imcu;

/// Where population snapshots come from.
#[derive(Clone)]
pub enum SnapshotSource {
    /// Primary database: the current SCN is always a consistent snapshot.
    Primary(Arc<ScnService>),
    /// Standby database: only published QuerySCNs are consistency points,
    /// and capture synchronizes with the quiesce period (§III.A).
    Standby {
        /// The published QuerySCN.
        query_scn: Arc<QueryScnCell>,
        /// The quiesce lock shared with the recovery coordinator.
        quiesce: Arc<QuiesceLock>,
    },
}

impl SnapshotSource {
    /// Capture a population snapshot, registering `pending` at the same
    /// consistency point. Returns the snapshot, or `None` when the standby
    /// has not published a QuerySCN yet. Shared with the cold-tier engine,
    /// whose re-compaction rebuilds obey the same snapshot discipline.
    pub(crate) fn capture_and_register<F: FnOnce(Scn)>(&self, register: F) -> Option<Scn> {
        match self {
            SnapshotSource::Primary(scns) => {
                let s = scns.current();
                if s == Scn::ZERO {
                    return None;
                }
                register(s);
                Some(s)
            }
            SnapshotSource::Standby { query_scn, quiesce } => {
                let _guard = quiesce.capture();
                let s = query_scn.get()?;
                register(s);
                Some(s)
            }
        }
    }
}

/// Outcome of one population pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PopulationReport {
    /// New units populated.
    pub populated: usize,
    /// Stale units rebuilt.
    pub repopulated: usize,
}

impl PopulationReport {
    /// Did the pass do anything?
    pub fn any(&self) -> bool {
        self.populated + self.repopulated > 0
    }
}

/// The background population engine of one instance.
pub struct PopulationEngine {
    store: Arc<Store>,
    imcs: Arc<ImcsStore>,
    source: SnapshotSource,
    config: ImcsConfig,
    /// Objects enabled for population *on this instance* (placement).
    enabled: RwLock<HashSet<ObjectId>>,
    /// RAC distribution filter: `Some(f)` restricts this instance to the
    /// blocks `f` maps to it (the home-location hashing scheme, §III.F).
    home_filter: Option<Arc<dyn Fn(imadg_common::Dba) -> bool + Send + Sync>>,
    /// Population busy time (the extra standby CPU of Fig. 10).
    pub cpu: CpuAccount,
    metrics: Arc<PopulationMetrics>,
}

impl PopulationEngine {
    /// Build an engine.
    pub fn new(
        store: Arc<Store>,
        imcs: Arc<ImcsStore>,
        source: SnapshotSource,
        config: ImcsConfig,
    ) -> Result<PopulationEngine> {
        config.validate()?;
        Ok(PopulationEngine {
            store,
            imcs,
            source,
            config,
            enabled: RwLock::new(HashSet::new()),
            home_filter: None,
            cpu: CpuAccount::new(),
            metrics: Arc::default(),
        })
    }

    /// Report population counts into a registry's population stage.
    pub fn set_metrics(&mut self, metrics: Arc<PopulationMetrics>) {
        self.metrics = metrics;
    }

    /// Restrict population to blocks the home-location map assigns to this
    /// instance (RAC distribution of IMCUs, §III.F).
    pub fn set_home_filter(
        &mut self,
        filter: Arc<dyn Fn(imadg_common::Dba) -> bool + Send + Sync>,
    ) {
        self.home_filter = Some(filter);
    }

    /// The column store this engine feeds.
    pub fn imcs(&self) -> &Arc<ImcsStore> {
        &self.imcs
    }

    /// Enable `object` for population on this instance.
    pub fn enable(&self, object: ObjectId) {
        self.enabled.write().insert(object);
    }

    /// Disable `object` and drop its units.
    pub fn disable(&self, object: ObjectId) {
        self.enabled.write().remove(&object);
        self.imcs.drop_object(object);
    }

    /// Is `object` enabled here?
    pub fn is_enabled(&self, object: ObjectId) -> bool {
        self.enabled.read().contains(&object)
    }

    /// One pass of the segment loader + population workers: populate
    /// uncovered block ranges and rebuild stale units.
    pub fn run_once(&self) -> Result<PopulationReport> {
        let _t = self.cpu.timer();
        let mut report = PopulationReport::default();
        let enabled: Vec<ObjectId> = self.enabled.read().iter().copied().collect();
        for object in enabled {
            // An enabled object whose dictionary entry hasn't arrived yet
            // (standby: the CREATE TABLE marker is still in flight) is not
            // an error — there is simply nothing to populate yet.
            if self.store.table(object).is_err() {
                continue;
            }
            report.populated += self.populate_uncovered(object)?;
            report.repopulated += self.repopulate_stale(object)?;
        }
        self.metrics.passes.inc();
        self.metrics.imcus_built.add(report.populated as u64);
        self.metrics.imcus_repopulated.add(report.repopulated as u64);
        Ok(report)
    }

    /// Drive population to a fixed point: loop until a pass does nothing.
    pub fn run_until_idle(&self) -> Result<PopulationReport> {
        let mut total = PopulationReport::default();
        loop {
            let r = self.run_once()?;
            if !r.any() {
                return Ok(total);
            }
            total.populated += r.populated;
            total.repopulated += r.repopulated;
        }
    }

    fn blocks_per_unit(&self, rows_per_block: u16) -> usize {
        (self.config.imcu_max_rows / rows_per_block.max(1) as usize).max(1)
    }

    fn populate_uncovered(&self, object: ObjectId) -> Result<usize> {
        let meta = self.store.table(object)?;
        let obj_imcs = self.imcs.ensure_object(object, meta.tenant);
        let dbas = self.store.block_dbas(object)?;
        let uncovered: Vec<_> = dbas
            .into_iter()
            .filter(|d| !obj_imcs.covers(*d))
            .filter(|d| self.home_filter.as_ref().is_none_or(|f| f(*d)))
            .collect();
        if uncovered.is_empty() {
            return Ok(0);
        }
        let mut built = 0usize;
        for chunk in uncovered.chunks(self.blocks_per_unit(meta.rows_per_block)) {
            let chunk = chunk.to_vec();
            let schema = meta.schema.read().clone();
            // Step 1: capture + register the pending handle atomically with
            // respect to QuerySCN advancement.
            let mut handle: Option<Arc<ImcuHandle>> = None;
            let snapshot = self.source.capture_and_register(|s| {
                let h = Arc::new(ImcuHandle::new(Imcu::pending(
                    object,
                    meta.tenant,
                    chunk.clone(),
                    s,
                    schema.version(),
                )));
                obj_imcs.register(h.clone());
                handle = Some(h);
            });
            let (Some(snapshot), Some(handle)) = (snapshot, handle) else {
                return Ok(built); // no consistency point yet
            };
            // Steps 2-3: build online and swap in.
            let exprs = self.imcs.expressions(object);
            let imcu = Imcu::build_with_expressions(
                &self.store,
                object,
                meta.tenant,
                chunk,
                snapshot,
                &schema,
                &exprs,
            )?;
            handle.swap(imcu);
            built += 1;
            self.build_pause();
        }
        Ok(built)
    }

    fn repopulate_stale(&self, object: ObjectId) -> Result<usize> {
        let Some(obj_imcs) = self.imcs.object(object) else { return Ok(0) };
        let meta = self.store.table(object)?;
        let mut rebuilt = 0usize;
        for handle in obj_imcs.handles() {
            // Cold units hide behind pending placeholders; rebuilding them
            // here would defeat eviction (the pending-forced rebuild below
            // would recall every evicted unit on the next pass). Their
            // re-compaction is the cold-tier engine's job.
            if handle.is_cold() {
                continue;
            }
            let (imcu, smu) = handle.pair();
            let stale_enough =
                imcu.is_pending() || smu.staleness(imcu.rows()) >= self.config.repopulate_threshold;
            if !stale_enough {
                continue;
            }
            let schema = meta.schema.read().clone();
            let dbas = imcu.dbas.clone();
            let snapshot = self.source.capture_and_register(|_| {});
            let Some(snapshot) = snapshot else { return Ok(rebuilt) };
            // Throttle: don't rebuild for tiny snapshot advances unless the
            // unit is unusable (pending or coarse-invalidated).
            let forced = imcu.is_pending() || smu.view().all_invalid();
            if !forced
                && snapshot.0.saturating_sub(imcu.snapshot.0) < self.config.repopulate_min_scn_gap
            {
                continue;
            }
            if snapshot <= imcu.snapshot && !imcu.is_pending() {
                continue; // nothing newer to absorb
            }
            let exprs = self.imcs.expressions(object);
            let rebuiltu = Imcu::build_with_expressions(
                &self.store,
                object,
                meta.tenant,
                dbas,
                snapshot,
                &schema,
                &exprs,
            )?;
            handle.swap(rebuiltu);
            rebuilt += 1;
            self.build_pause();
        }
        Ok(rebuilt)
    }

    /// Yield between build quanta so background population does not starve
    /// queries or redo apply.
    fn build_pause(&self) {
        if self.config.build_pause_micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.config.build_pause_micros));
        }
    }
}

/// Convenience: which error marks "standby has no QuerySCN yet".
pub fn is_not_ready(err: &Error) -> bool {
    matches!(err, Error::NoQueryScn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_common::{RedoThreadId, TenantId};
    use imadg_redo::LogBuffer;
    use imadg_storage::{ColumnType, DbaAllocator, Schema, TableSpec, Value};
    use imadg_txn::{InMemoryRegistry, LockTable, TxnIdService, TxnManager};

    const OBJ: ObjectId = ObjectId(1);

    fn primary() -> (TxnManager, Arc<Store>, Arc<ScnService>) {
        let store = Arc::new(Store::new());
        let scns = Arc::new(ScnService::new());
        let txm = TxnManager::new(
            store.clone(),
            scns.clone(),
            Arc::new(LogBuffer::new(RedoThreadId(1))),
            Arc::new(TxnIdService::new()),
            Arc::new(LockTable::new()),
            Arc::new(InMemoryRegistry::new()),
            Arc::new(DbaAllocator::default()),
        );
        txm.create_table(TableSpec {
            id: OBJ,
            name: "t".into(),
            tenant: TenantId::DEFAULT,
            schema: Schema::of(&[("id", ColumnType::Int), ("n", ColumnType::Int)]),
            key_ordinal: 0,
            rows_per_block: 16,
        })
        .unwrap();
        (txm, store, scns)
    }

    fn load(txm: &TxnManager, n: i64) {
        let mut tx = txm.begin(TenantId::DEFAULT);
        for k in 0..n {
            txm.insert(&mut tx, OBJ, vec![Value::Int(k), Value::Int(k * 2)]).unwrap();
        }
        txm.commit(tx);
    }

    fn engine(store: Arc<Store>, scns: Arc<ScnService>, cfg: ImcsConfig) -> PopulationEngine {
        let e = PopulationEngine::new(
            store,
            Arc::new(ImcsStore::new()),
            SnapshotSource::Primary(scns),
            cfg,
        )
        .unwrap();
        e.enable(OBJ);
        e
    }

    #[test]
    fn populates_in_chunks() {
        let (txm, store, scns) = primary();
        load(&txm, 100); // 16 rows/block → 7 blocks
        let cfg = ImcsConfig { imcu_max_rows: 32, ..Default::default() }; // 2 blocks/unit
        let e = engine(store, scns, cfg);
        let r = e.run_once().unwrap();
        assert_eq!(r.populated, 4, "7 blocks / 2 per unit → 4 units");
        let obj = e.imcs().object(OBJ).unwrap();
        assert_eq!(obj.populated_rows(), 100);
        // Second pass: nothing new.
        assert_eq!(e.run_once().unwrap().populated, 0);
    }

    #[test]
    fn new_blocks_extend_coverage() {
        let (txm, store, scns) = primary();
        load(&txm, 32); // 16 rows/block → 2 blocks
        let cfg = ImcsConfig {
            imcu_max_rows: 16,
            repopulate_min_scn_gap: 1_000_000,
            ..Default::default()
        };
        let e = engine(store, scns, cfg);
        assert_eq!(e.run_once().unwrap().populated, 2);
        // Append 64 more rows with fresh keys → 4 new blocks.
        let mut tx = txm.begin(TenantId::DEFAULT);
        for k in 1000..1064 {
            txm.insert(&mut tx, OBJ, vec![Value::Int(k), Value::Int(k)]).unwrap();
        }
        txm.commit(tx);
        let r = e.run_once().unwrap();
        assert_eq!(r.populated, 4, "new blocks get their own units");
        assert_eq!(e.imcs().object(OBJ).unwrap().populated_rows(), 96);
    }

    #[test]
    fn repopulates_when_stale() {
        let (txm, store, scns) = primary();
        load(&txm, 64);
        let cfg = ImcsConfig {
            repopulate_threshold: 0.1,
            repopulate_min_scn_gap: 0,
            ..Default::default()
        };
        let e = engine(store.clone(), scns, cfg);
        e.run_once().unwrap();
        let obj = e.imcs().object(OBJ).unwrap();
        let handle = &obj.handles()[0];
        let (imcu, smu) = handle.pair();
        let old_snapshot = imcu.snapshot;
        // Invalidate 20% of rows (as the flush component would).
        for rn in 0..(imcu.rows() / 5) as u32 {
            smu.invalidate_row(imcu.loc(rn), Scn(old_snapshot.0 + 1));
        }
        // Make new database time so there is something to absorb.
        let mut tx = txm.begin(TenantId::DEFAULT);
        txm.update_column_by_key(&mut tx, OBJ, 0, "n", Value::Int(999)).unwrap();
        txm.commit(tx);
        let r = e.run_once().unwrap();
        assert_eq!(r.repopulated, 1);
        let (imcu2, smu2) = handle.pair();
        assert!(imcu2.snapshot > old_snapshot);
        assert_eq!(smu2.view().invalid_count(), 0, "absorbed by rebuild");
        // The rebuilt unit holds the updated value.
        let rn = imcu2.rownum(imadg_storage::RowLoc { dba: imcu2.dbas[0], slot: 0 }).unwrap();
        assert_eq!(imcu2.value(rn, 1), Value::Int(999));
    }

    #[test]
    fn min_scn_gap_throttles_repopulation() {
        let (txm, store, scns) = primary();
        load(&txm, 32);
        let cfg = ImcsConfig {
            repopulate_threshold: 0.0,
            repopulate_min_scn_gap: 1_000_000,
            ..Default::default()
        };
        let e = engine(store, scns, cfg);
        e.run_once().unwrap();
        let r = e.run_once().unwrap();
        assert_eq!(r.repopulated, 0, "gap throttle holds");
        let _ = txm;
    }

    #[test]
    fn disable_drops_units() {
        let (txm, store, scns) = primary();
        load(&txm, 32);
        let e = engine(store, scns, ImcsConfig::default());
        e.run_once().unwrap();
        assert!(e.imcs().object(OBJ).is_some());
        e.disable(OBJ);
        assert!(e.imcs().object(OBJ).is_none());
        assert!(!e.is_enabled(OBJ));
        let _ = txm;
    }

    #[test]
    fn standby_source_requires_query_scn() {
        let (_txm, store, _scns) = primary();
        let query_scn = Arc::new(QueryScnCell::new());
        let e = PopulationEngine::new(
            store,
            Arc::new(ImcsStore::new()),
            SnapshotSource::Standby {
                query_scn: query_scn.clone(),
                quiesce: Arc::new(QuiesceLock::new()),
            },
            ImcsConfig::default(),
        )
        .unwrap();
        e.enable(OBJ);
        let r = e.run_once().unwrap();
        assert_eq!(r.populated, 0, "no consistency point published yet");
        query_scn.publish(Scn(1));
        // Now population can proceed (blocks exist? only if DML ran before —
        // here the table is empty, so still nothing to do).
        let r = e.run_once().unwrap();
        assert_eq!(r.populated, 0);
    }
}
