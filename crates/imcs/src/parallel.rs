//! Query-scoped parallel execution: fan one scan's per-unit tasks across a
//! bounded pool of scoped worker threads and merge the partial results in
//! deterministic task order (the paper's 16-core In-Memory Scan Engine
//! parallelizes one query across IMCUs the same way, §IV).
//!
//! Workers pull task indices from a shared atomic cursor — no per-task
//! thread spawn, no channel, no allocation beyond the result slots — and
//! every partial lands in its own index slot, so the merged output is
//! bit-identical regardless of scheduling (degree N ≡ degree 1).

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Resolve a configured parallel degree: `0` means "one worker per
/// available core", anything else is taken literally.
pub fn resolve_degree(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        configured
    }
}

/// Run `task(0..tasks)` with up to `degree` workers and return the results
/// in task-index order. `degree <= 1` (or a single task) runs inline on
/// the caller's thread — the serial path allocates nothing.
pub fn run_indexed<T, F>(degree: usize, tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if degree <= 1 || tasks <= 1 {
        return (0..tasks).map(task).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = degree.min(tasks);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    return;
                }
                *slots[i].lock() = Some(task(i));
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().expect("every task slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed(1, 37, |i| i * i);
        let parallel = run_indexed(4, 37, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[36], 36 * 36);
    }

    #[test]
    fn zero_tasks() {
        assert!(run_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn degree_resolution() {
        assert_eq!(resolve_degree(3), 3);
        assert!(resolve_degree(0) >= 1);
    }
}
