//! Scan predicates.
//!
//! The paper's analytic queries are selective single-column filters over
//! the wide OLTAP table (Table 1: `WHERE n1 = :1`, `WHERE c1 = :2`). The
//! scan engine evaluates predicates directly against encoded column units
//! and falls back to row-image evaluation for invalid rows.

use imadg_common::{Error, Result};
use imadg_storage::{Row, Schema, Value};

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Apply to a comparison ordering result.
    #[inline]
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// One column comparison: `column <op> literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Ordinal of the column in the stored row layout.
    pub ordinal: usize,
    /// Operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Value,
}

impl Predicate {
    /// Build a predicate by column name against `schema`.
    pub fn new(schema: &Schema, column: &str, op: CmpOp, value: Value) -> Result<Predicate> {
        let ordinal = schema.ordinal(column)?;
        let def = schema.column(column)?;
        if !value.matches_type(def.ctype) {
            return Err(Error::TypeMismatch { column: column.to_string() });
        }
        Ok(Predicate { ordinal, op, value })
    }

    /// Equality shorthand.
    pub fn eq(schema: &Schema, column: &str, value: Value) -> Result<Predicate> {
        Predicate::new(schema, column, CmpOp::Eq, value)
    }

    /// Evaluate against one value. SQL semantics: NULL never matches.
    #[inline]
    pub fn eval_value(&self, v: &Value) -> bool {
        match (v, &self.value) {
            (Value::Int(a), Value::Int(b)) => self.op.matches(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => self.op.matches(a.as_ref().cmp(b.as_ref())),
            _ => false, // NULL or type mismatch: no match
        }
    }

    /// Evaluate against a row image.
    #[inline]
    pub fn eval_row(&self, row: &Row) -> bool {
        self.eval_value(row.get(self.ordinal))
    }
}

/// A conjunction of predicates (empty = match everything).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Filter {
    /// AND-ed terms.
    pub terms: Vec<Predicate>,
}

impl Filter {
    /// Filter that matches every row.
    pub fn all() -> Filter {
        Filter::default()
    }

    /// Single-term filter.
    pub fn of(p: Predicate) -> Filter {
        Filter { terms: vec![p] }
    }

    /// Does the row image satisfy every term?
    #[inline]
    pub fn eval_row(&self, row: &Row) -> bool {
        self.terms.iter().all(|p| p.eval_row(row))
    }

    /// The leading term (driven through the encoded column scan); the rest
    /// are verified on reconstructed values.
    pub fn split_first(&self) -> Option<(&Predicate, &[Predicate])> {
        self.terms.split_first()
    }
}

impl From<Predicate> for Filter {
    fn from(p: Predicate) -> Filter {
        Filter::of(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imadg_storage::ColumnType;

    fn schema() -> Schema {
        Schema::of(&[("id", ColumnType::Int), ("n1", ColumnType::Int), ("c1", ColumnType::Varchar)])
    }

    #[test]
    fn construction_checks_types() {
        let s = schema();
        assert!(Predicate::eq(&s, "n1", Value::Int(5)).is_ok());
        assert!(matches!(
            Predicate::eq(&s, "n1", Value::str("x")),
            Err(Error::TypeMismatch { .. })
        ));
        assert!(Predicate::eq(&s, "nope", Value::Int(1)).is_err());
    }

    #[test]
    fn int_comparisons() {
        let s = schema();
        let p = Predicate::new(&s, "n1", CmpOp::Lt, Value::Int(10)).unwrap();
        assert!(p.eval_value(&Value::Int(9)));
        assert!(!p.eval_value(&Value::Int(10)));
        let p = Predicate::new(&s, "n1", CmpOp::Ge, Value::Int(10)).unwrap();
        assert!(p.eval_value(&Value::Int(10)));
        assert!(!p.eval_value(&Value::Int(9)));
        let p = Predicate::new(&s, "n1", CmpOp::Ne, Value::Int(10)).unwrap();
        assert!(p.eval_value(&Value::Int(9)));
        assert!(!p.eval_value(&Value::Int(10)));
    }

    #[test]
    fn null_never_matches() {
        let s = schema();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            let p = Predicate::new(&s, "n1", op, Value::Int(10)).unwrap();
            assert!(!p.eval_value(&Value::Null), "{op:?} on NULL");
        }
    }

    #[test]
    fn string_comparisons() {
        let s = schema();
        let p = Predicate::eq(&s, "c1", Value::str("abc")).unwrap();
        assert!(p.eval_value(&Value::str("abc")));
        assert!(!p.eval_value(&Value::str("abd")));
        let p = Predicate::new(&s, "c1", CmpOp::Lt, Value::str("b")).unwrap();
        assert!(p.eval_value(&Value::str("a")));
        assert!(!p.eval_value(&Value::str("c")));
    }

    #[test]
    fn filter_conjunction() {
        let s = schema();
        let f = Filter {
            terms: vec![
                Predicate::new(&s, "n1", CmpOp::Ge, Value::Int(5)).unwrap(),
                Predicate::eq(&s, "c1", Value::str("x")).unwrap(),
            ],
        };
        let hit = Row::new(vec![Value::Int(1), Value::Int(7), Value::str("x")]);
        let miss = Row::new(vec![Value::Int(1), Value::Int(7), Value::str("y")]);
        assert!(f.eval_row(&hit));
        assert!(!f.eval_row(&miss));
        assert!(Filter::all().eval_row(&miss));
        assert_eq!(f.split_first().unwrap().1.len(), 1);
    }
}
