//! Chunked selection bitmaps: the match-vector currency of the vectorized
//! scan kernels.
//!
//! Every predicate kernel produces one bit per row, packed 64 rows to a
//! word. Conjunctions AND whole words, SMU validity converts to the same
//! mask form, and rows are materialized only for final survivors — the
//! paper's In-Memory Scan Engine discipline (vector-at-a-time predicate
//! evaluation over packed codes, §IV "In-Memory Scan Engine").
//!
//! Invariant: bits at positions `>= rows` are always zero, so word-level
//! popcounts and ANDs never need edge masking.

/// A fixed-length selection bitmap (one bit per row, 64 rows per word).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelBitmap {
    words: Vec<u64>,
    rows: usize,
}

impl SelBitmap {
    /// All-zero bitmap over `rows` rows.
    pub fn zeroes(rows: usize) -> SelBitmap {
        SelBitmap { words: vec![0u64; rows.div_ceil(64)], rows }
    }

    /// All-one bitmap over `rows` rows (tail bits stay zero).
    pub fn ones(rows: usize) -> SelBitmap {
        let mut b = SelBitmap { words: vec![u64::MAX; rows.div_ceil(64)], rows };
        b.mask_tail();
        b
    }

    /// Number of rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The packed words (kernel output surface).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable packed words. Callers writing whole words must finish with
    /// [`SelBitmap::mask_tail`] to restore the tail-zero invariant.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Zero every bit at a position `>= rows` (restores the invariant
    /// after whole-word kernel writes).
    pub fn mask_tail(&mut self) {
        let tail = self.rows % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.rows);
        self.words[i >> 6] |= 1 << (i & 63);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.rows);
        self.words[i >> 6] &= !(1 << (i & 63));
    }

    /// Is bit `i` set?
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i >> 6] & (1 << (i & 63)) != 0
    }

    /// Set every bit in `[lo, hi)` (RLE run bursts).
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        debug_assert!(lo <= hi && hi <= self.rows);
        if lo >= hi {
            return;
        }
        let (lw, hw) = (lo >> 6, (hi - 1) >> 6);
        let lo_mask = u64::MAX << (lo & 63);
        let hi_mask = u64::MAX >> (63 - ((hi - 1) & 63));
        if lw == hw {
            self.words[lw] |= lo_mask & hi_mask;
        } else {
            self.words[lw] |= lo_mask;
            for w in &mut self.words[lw + 1..hw] {
                *w = u64::MAX;
            }
            self.words[hw] |= hi_mask;
        }
    }

    /// `self &= other` (conjunction of two match vectors).
    pub fn and_assign(&mut self, other: &SelBitmap) {
        debug_assert_eq!(self.rows, other.rows);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other` (subtract a mask, e.g. a null bitmap).
    pub fn and_not_assign(&mut self, other_words: &[u64]) {
        for (a, &b) in self.words.iter_mut().zip(other_words) {
            *a &= !b;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Are no bits set?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits in `[lo, hi)` (RLE masked aggregation).
    pub fn count_range(&self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi && hi <= self.rows);
        if lo >= hi {
            return 0;
        }
        let (lw, hw) = (lo >> 6, (hi - 1) >> 6);
        let lo_mask = u64::MAX << (lo & 63);
        let hi_mask = u64::MAX >> (63 - ((hi - 1) & 63));
        if lw == hw {
            return (self.words[lw] & lo_mask & hi_mask).count_ones() as usize;
        }
        let mut n = (self.words[lw] & lo_mask).count_ones() as usize;
        for w in &self.words[lw + 1..hw] {
            n += w.count_ones() as usize;
        }
        n + (self.words[hw] & hi_mask).count_ones() as usize
    }

    /// Iterate the set row numbers in ascending order.
    pub fn iter_ones(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over set bit positions (ascending).
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some((self.word_idx as u32) << 6 | bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_masks_tail() {
        let b = SelBitmap::ones(70);
        assert_eq!(b.count(), 70);
        assert!(b.get(69));
        let collected: Vec<u32> = b.iter_ones().collect();
        assert_eq!(collected.len(), 70);
        assert_eq!(collected[69], 69);
    }

    #[test]
    fn set_clear_get() {
        let mut b = SelBitmap::zeroes(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn set_range_spans_words() {
        let mut b = SelBitmap::zeroes(200);
        b.set_range(60, 140);
        assert_eq!(b.count(), 80);
        assert!(!b.get(59) && b.get(60) && b.get(139) && !b.get(140));
        assert_eq!(b.count_range(60, 140), 80);
        assert_eq!(b.count_range(0, 60), 0);
        assert_eq!(b.count_range(100, 200), 40);
        // Single-word range.
        let mut c = SelBitmap::zeroes(64);
        c.set_range(3, 7);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn and_ops() {
        let mut a = SelBitmap::ones(100);
        let mut b = SelBitmap::zeroes(100);
        b.set_range(10, 20);
        a.and_assign(&b);
        assert_eq!(a.count(), 10);
        let nulls = vec![1u64 << 12, 0];
        a.and_not_assign(&nulls);
        assert_eq!(a.count(), 9);
        assert!(!a.get(12));
    }

    #[test]
    fn empty_bitmap() {
        let b = SelBitmap::zeroes(0);
        assert_eq!(b.count(), 0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
        let o = SelBitmap::ones(0);
        assert_eq!(o.count(), 0);
    }
}
