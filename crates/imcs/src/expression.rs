//! In-Memory Expressions (paper §V).
//!
//! "In-Memory Expressions are now supported on the Standby database and
//! provide even faster performance for complex, analytical expressions
//! used in reporting queries." An expression registered for an object is
//! evaluated **once per row at population time** and stored as an extra
//! encoded virtual column inside each IMCU (with its own storage-index
//! entry); scans filter on the precomputed column instead of re-evaluating
//! the expression per row. Stale rows fall back to evaluating the
//! expression over the row image fetched from the row store — the same
//! SMU reconciliation discipline as base columns.

use std::fmt;
use std::sync::Arc;

use imadg_common::{Error, Result};
use imadg_storage::{ColumnType, Row, Schema, Value};

/// A scalar expression over a row.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A base column by ordinal.
    Column(usize),
    /// An integer literal.
    IntLit(i64),
    /// A string literal.
    StrLit(Arc<str>),
    /// Integer addition (NULL-propagating).
    Add(Box<Expr>, Box<Expr>),
    /// Integer subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Integer multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// String concatenation.
    Concat(Box<Expr>, Box<Expr>),
    /// Uppercase a string.
    Upper(Box<Expr>),
    /// Substring by byte range `[start, start+len)`, clamped.
    Substr(Box<Expr>, usize, usize),
    /// Integer CASE: if the operand is NULL yield the default literal.
    Coalesce(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: base column by name.
    pub fn col(schema: &Schema, name: &str) -> Result<Expr> {
        Ok(Expr::Column(schema.ordinal(name)?))
    }

    /// Evaluate against a row image. NULL propagates through arithmetic
    /// and string operators (SQL semantics).
    pub fn eval(&self, row: &Row) -> Value {
        match self {
            Expr::Column(ord) => row.get(*ord).clone(),
            Expr::IntLit(v) => Value::Int(*v),
            Expr::StrLit(s) => Value::Str(s.clone()),
            Expr::Add(a, b) => int_op(a.eval(row), b.eval(row), i64::wrapping_add),
            Expr::Sub(a, b) => int_op(a.eval(row), b.eval(row), i64::wrapping_sub),
            Expr::Mul(a, b) => int_op(a.eval(row), b.eval(row), i64::wrapping_mul),
            Expr::Concat(a, b) => match (a.eval(row), b.eval(row)) {
                (Value::Str(x), Value::Str(y)) => Value::str(format!("{x}{y}")),
                _ => Value::Null,
            },
            Expr::Upper(a) => match a.eval(row) {
                Value::Str(s) => Value::str(s.to_uppercase()),
                _ => Value::Null,
            },
            Expr::Substr(a, start, len) => match a.eval(row) {
                Value::Str(s) => {
                    let start = (*start).min(s.len());
                    let end = (start + *len).min(s.len());
                    Value::str(&s[start..end])
                }
                _ => Value::Null,
            },
            Expr::Coalesce(a, b) => match a.eval(row) {
                Value::Null => b.eval(row),
                v => v,
            },
        }
    }

    /// The expression's result type under `schema` (used to pick the
    /// virtual column's encoding).
    pub fn result_type(&self, schema: &Schema) -> Result<ColumnType> {
        match self {
            Expr::Column(ord) => {
                let def = schema
                    .all_columns()
                    .get(*ord)
                    .ok_or_else(|| Error::UnknownColumn(format!("ordinal {ord}")))?;
                Ok(def.ctype)
            }
            Expr::IntLit(_) => Ok(ColumnType::Int),
            Expr::StrLit(_) => Ok(ColumnType::Varchar),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                expect(schema, a, ColumnType::Int)?;
                expect(schema, b, ColumnType::Int)?;
                Ok(ColumnType::Int)
            }
            Expr::Concat(a, b) => {
                expect(schema, a, ColumnType::Varchar)?;
                expect(schema, b, ColumnType::Varchar)?;
                Ok(ColumnType::Varchar)
            }
            Expr::Upper(a) | Expr::Substr(a, _, _) => {
                expect(schema, a, ColumnType::Varchar)?;
                Ok(ColumnType::Varchar)
            }
            Expr::Coalesce(a, b) => {
                let ta = a.result_type(schema)?;
                expect(schema, b, ta)?;
                Ok(ta)
            }
        }
    }
}

fn expect(schema: &Schema, e: &Expr, want: ColumnType) -> Result<()> {
    let got = e.result_type(schema)?;
    if got != want {
        return Err(Error::TypeMismatch { column: format!("{e}") });
    }
    Ok(())
}

fn int_op(a: Value, b: Value, f: fn(i64, i64) -> i64) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(f(x, y)),
        _ => Value::Null,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(o) => write!(f, "col#{o}"),
            Expr::IntLit(v) => write!(f, "{v}"),
            Expr::StrLit(s) => write!(f, "'{s}'"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Concat(a, b) => write!(f, "({a} || {b})"),
            Expr::Upper(a) => write!(f, "UPPER({a})"),
            Expr::Substr(a, s, l) => write!(f, "SUBSTR({a}, {s}, {l})"),
            Expr::Coalesce(a, b) => write!(f, "COALESCE({a}, {b})"),
        }
    }
}

/// A named in-memory expression registered for an object.
#[derive(Debug, Clone)]
pub struct ImExpression {
    /// Virtual-column name (unique per object).
    pub name: String,
    /// The expression.
    pub expr: Arc<Expr>,
}

impl ImExpression {
    /// Build a named expression.
    pub fn new(name: impl Into<String>, expr: Expr) -> ImExpression {
        ImExpression { name: name.into(), expr: Arc::new(expr) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[("n", ColumnType::Int), ("m", ColumnType::Int), ("c", ColumnType::Varchar)])
    }

    fn row(n: i64, m: i64, c: &str) -> Row {
        Row::new(vec![Value::Int(n), Value::Int(m), Value::str(c)])
    }

    #[test]
    fn arithmetic() {
        let s = schema();
        let e = Expr::Add(
            Box::new(Expr::Mul(Box::new(Expr::col(&s, "n").unwrap()), Box::new(Expr::IntLit(10)))),
            Box::new(Expr::col(&s, "m").unwrap()),
        );
        assert_eq!(e.eval(&row(3, 4, "x")), Value::Int(34));
        assert_eq!(e.result_type(&s).unwrap(), ColumnType::Int);
    }

    #[test]
    fn null_propagates() {
        let s = schema();
        let e = Expr::Add(Box::new(Expr::col(&s, "n").unwrap()), Box::new(Expr::IntLit(1)));
        let r = Row::new(vec![Value::Null, Value::Int(1), Value::str("x")]);
        assert_eq!(e.eval(&r), Value::Null);
        let c = Expr::Coalesce(Box::new(Expr::col(&s, "n").unwrap()), Box::new(Expr::IntLit(-1)));
        assert_eq!(c.eval(&r), Value::Int(-1));
        assert_eq!(c.eval(&row(5, 0, "x")), Value::Int(5));
    }

    #[test]
    fn string_ops() {
        let s = schema();
        let e = Expr::Upper(Box::new(Expr::Concat(
            Box::new(Expr::col(&s, "c").unwrap()),
            Box::new(Expr::StrLit("!".into())),
        )));
        assert_eq!(e.eval(&row(0, 0, "ab")), Value::str("AB!"));
        assert_eq!(e.result_type(&s).unwrap(), ColumnType::Varchar);
        let sub = Expr::Substr(Box::new(Expr::col(&s, "c").unwrap()), 1, 2);
        assert_eq!(sub.eval(&row(0, 0, "hello")), Value::str("el"));
        assert_eq!(sub.eval(&row(0, 0, "h")), Value::str(""));
    }

    #[test]
    fn type_checking_rejects_mismatches() {
        let s = schema();
        let bad = Expr::Add(Box::new(Expr::col(&s, "c").unwrap()), Box::new(Expr::IntLit(1)));
        assert!(bad.result_type(&s).is_err());
        let bad = Expr::Upper(Box::new(Expr::col(&s, "n").unwrap()));
        assert!(bad.result_type(&s).is_err());
    }

    #[test]
    fn display_is_readable() {
        let s = schema();
        let e = Expr::Mul(Box::new(Expr::col(&s, "n").unwrap()), Box::new(Expr::IntLit(2)));
        assert_eq!(format!("{e}"), "(col#0 * 2)");
    }
}
