//! The scalar (row-at-a-time) scan reference path.
//!
//! This is the pre-vectorization scan engine, kept verbatim as (a) the
//! oracle for the kernel-parity property suite — the bitmap path must be
//! bit-identical to this one on every input — and (b) the "scalar" baseline
//! the bench trajectory measures the vectorized engine against. It drives
//! only the *leading* predicate through the encoded column, materializes
//! every candidate row, and verifies remaining conjuncts on row images.

use std::collections::HashSet;
use std::sync::Arc;

use imadg_common::{ObjectId, Result, Scn};
use imadg_storage::Store;

use crate::imcs_store::{ImcsStore, ObjectImcs};
use crate::predicate::{Filter, Predicate};
use crate::scan::{ScanResult, ScanStats};

/// Scalar scan of `object` at `snapshot` (see [`crate::scan::scan`] for
/// the vectorized equivalent and the `Ok(None)` contract).
pub fn scan_scalar(
    imcs: &ImcsStore,
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    snapshot: Scn,
) -> Result<Option<ScanResult>> {
    match imcs.object(object) {
        Some(obj) => scan_entries_scalar(&[obj], store, object, filter, snapshot).map(Some),
        None => Ok(None),
    }
}

/// The old unit walk: leading predicate through the column, per-candidate
/// `is_invalid` probe, materialize-then-verify for the remaining terms,
/// `HashSet` covered-block bookkeeping.
pub fn scan_entries_scalar(
    entries: &[Arc<ObjectImcs>],
    store: &Store,
    object: ObjectId,
    filter: &Filter,
    snapshot: Scn,
) -> Result<ScanResult> {
    let mut result = ScanResult { rows: Vec::new(), stats: ScanStats::default(), profile: None };
    let mut covered: HashSet<imadg_common::Dba> = HashSet::new();

    for handle in entries.iter().flat_map(|e| e.handles()) {
        let (imcu, smu) = handle.pair();
        covered.extend(imcu.dbas.iter().copied());
        let view = smu.read();

        if imcu.is_pending() || view.all_invalid() || snapshot < imcu.snapshot {
            result.stats.bypassed_units += 1;
            store.scan_blocks(&imcu.dbas, snapshot, |_, row| {
                if filter.eval_row(row) {
                    result.rows.push(row.clone());
                    result.stats.fallback_rows += 1;
                }
            })?;
            continue;
        }

        let candidates: Vec<u32> = match filter.split_first() {
            Some((head, _)) if !imcu.storage_index.may_match(head) => {
                result.stats.pruned_units += 1;
                Vec::new()
            }
            Some((head, _)) => {
                result.stats.scanned_units += 1;
                imcu.scan(head)
            }
            None => {
                result.stats.scanned_units += 1;
                imcu.all_rows().collect()
            }
        };
        let rest: &[Predicate] = match filter.split_first() {
            Some((_, rest)) => rest,
            None => &[],
        };
        for rn in candidates {
            let loc = imcu.loc(rn);
            if view.is_invalid(loc) {
                continue; // served by the fallback pass below
            }
            let row = imcu.materialize(rn);
            if rest.iter().all(|p| p.eval_row(&row)) {
                result.rows.push(row);
                result.stats.imcu_rows += 1;
            }
        }

        let mut fallback: Vec<imadg_storage::RowLoc> = Vec::with_capacity(view.fallback_count());
        view.collect_fallback(&mut fallback);
        drop(view);
        store.fetch_rows_batched(&mut fallback, snapshot, |_, row| {
            if filter.eval_row(row) {
                result.rows.push(row.clone());
                result.stats.fallback_rows += 1;
            }
        })?;
    }

    let uncovered: Vec<_> =
        store.block_dbas(object)?.into_iter().filter(|d| !covered.contains(d)).collect();
    if !uncovered.is_empty() {
        store.scan_blocks(&uncovered, snapshot, |_, row| {
            if filter.eval_row(row) {
                result.rows.push(row.clone());
                result.stats.uncovered_rows += 1;
            }
        })?;
    }

    Ok(result)
}
