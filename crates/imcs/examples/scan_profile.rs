//! Phase decomposition of one vectorized scan — run with
//! `cargo run --release -p imadg-imcs --example scan_profile` to see
//! where a scan's time goes (kernel, validity, materialize, driver).

use std::sync::Arc;
use std::time::Instant;

use imadg_common::{ImcsConfig, ObjectId, ScnService, TenantId};
use imadg_imcs::{Filter, ImcsStore, PopulationEngine, Predicate, SnapshotSource};
use imadg_redo::LogBuffer;
use imadg_storage::{ColumnType, DbaAllocator, Schema, Store, TableSpec, Value};
use imadg_txn::{InMemoryRegistry, LockTable, TxnIdService, TxnManager};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const OBJ: ObjectId = ObjectId(1);

fn main() {
    let rows: usize =
        std::env::var("IMADG_BENCH_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(400_000);
    let store = Arc::new(Store::new());
    let scns = Arc::new(ScnService::new());
    let txm = TxnManager::new(
        store.clone(),
        scns.clone(),
        Arc::new(LogBuffer::new(imadg_common::RedoThreadId(1))),
        Arc::new(TxnIdService::new()),
        Arc::new(LockTable::new()),
        Arc::new(InMemoryRegistry::new()),
        Arc::new(DbaAllocator::default()),
    );
    let schema = Schema::of(&[
        ("id", ColumnType::Int),
        ("n1", ColumnType::Int),
        ("c1", ColumnType::Varchar),
    ]);
    txm.create_table(TableSpec {
        id: OBJ,
        name: "t".into(),
        tenant: TenantId::DEFAULT,
        schema: schema.clone(),
        key_ordinal: 0,
        rows_per_block: 256,
    })
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(1);
    let mut k = 0i64;
    while (k as usize) < rows {
        let mut tx = txm.begin(TenantId::DEFAULT);
        for _ in 0..1024.min(rows - k as usize) {
            txm.insert(
                &mut tx,
                OBJ,
                vec![
                    Value::Int(k),
                    Value::Int(rng.gen_range(0..1000)),
                    Value::str(format!("val_{:06}", rng.gen_range(0..1000))),
                ],
            )
            .unwrap();
            k += 1;
        }
        txm.commit(tx);
    }
    let engine = PopulationEngine::new(
        store.clone(),
        Arc::new(ImcsStore::new()),
        SnapshotSource::Primary(scns.clone()),
        ImcsConfig { imcu_max_rows: 64 * 1024, build_pause_micros: 0, ..Default::default() },
    )
    .unwrap();
    engine.enable(OBJ);
    engine.run_until_idle().unwrap();
    let imcs = engine.imcs().clone();
    let snapshot = scns.current();
    let q = Filter::of(Predicate::eq(&schema, "n1", Value::Int(7)).unwrap());
    let handles = imcs.object(OBJ).unwrap().handles();
    println!("{} units", handles.len());

    let iters = 50;
    let time = |label: &str, f: &mut dyn FnMut() -> usize| {
        let mut n = 0;
        for _ in 0..3 {
            n = f();
        }
        let t = Instant::now();
        for _ in 0..iters {
            n = f();
        }
        let us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
        println!("{label:<28} {us:>10.1} us  ({n})");
    };

    time("filter_bitmap", &mut || {
        let mut total = 0usize;
        for h in &handles {
            let (imcu, _smu) = h.pair();
            if let Some(sel) = imcu.filter_bitmap(&q) {
                total += sel.count();
            }
        }
        total
    });
    time("filter_bitmap+materialize", &mut || {
        let mut rows_out = Vec::new();
        for h in &handles {
            let (imcu, _smu) = h.pair();
            if let Some(sel) = imcu.filter_bitmap(&q) {
                imcu.materialize_matches(&sel, &mut rows_out);
            }
        }
        rows_out.len()
    });
    // Decompose the materialize phase against precomputed bitmaps.
    let pre: Vec<_> = handles
        .iter()
        .filter_map(|h| {
            let (imcu, _smu) = h.pair();
            imcu.filter_bitmap(&q).map(|sel| (imcu, sel))
        })
        .collect();
    time("iter_ones only", &mut || pre.iter().map(|(_, sel)| sel.iter_ones().count()).sum());
    time("materialize only", &mut || {
        let mut rows_out = Vec::new();
        for (imcu, sel) in &pre {
            imcu.materialize_matches(sel, &mut rows_out);
        }
        rows_out.len()
    });
    time("smu pair+validity", &mut || {
        let mut total = 0usize;
        for h in &handles {
            let (imcu, smu) = h.pair();
            let view = smu.read();
            if view.validity_mask(imcu.rows(), |l| imcu.rownum(l)).is_some() {
                total += 1;
            }
        }
        total
    });
    time("block_dbas", &mut || store.block_dbas(OBJ).unwrap().len());
    time("full scan_parallel d1", &mut || {
        imadg_imcs::scan_parallel(&imcs, &store, OBJ, &q, snapshot, 1).unwrap().unwrap().rows.len()
    });
    time("full aggregate d1", &mut || {
        let stores = [imcs.clone()];
        imadg_imcs::scan_aggregate_parallel(&stores, &store, OBJ, &q, 1, snapshot, 1)
            .unwrap()
            .unwrap()
            .aggs
            .count as usize
    });
    // Does a buffer-cache scan (the bench's first measured config) degrade
    // subsequent columnar scans in the same process?
    time("row_store once", &mut || {
        let mut n = 0usize;
        store
            .scan_object(OBJ, snapshot, None, |_, row| {
                if q.eval_row(row) {
                    n += 1;
                }
            })
            .unwrap();
        n
    });
    time("full scan_parallel d1 again", &mut || {
        imadg_imcs::scan_parallel(&imcs, &store, OBJ, &q, snapshot, 1).unwrap().unwrap().rows.len()
    });
}
