//! Property-based round-trip suite for the cold columnar tier.
//!
//! The full eviction lifecycle — build an IMCU, serialize it to an
//! `.imcf` file, evict, scan from disk, recall back to memory — must be
//! bit-identical to the always-hot scalar oracle on every input: all
//! encodings the population engine picks (dictionary, frame-of-reference,
//! RLE, wide plain), any null density, any pattern of SMU invalidations
//! applied before eviction (repopulated away) and after eviction
//! (journaled against the cold placeholder). Cases come from the offline
//! proptest shim (deterministic seed per test name, no shrinking).
//!
//! A second property drives torn-file corruption: truncating a cold file
//! at an arbitrary byte must degrade that unit to the row-store bypass —
//! same rows, no panic — and the next tier pass must quarantine the file.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use imadg_common::metrics::TierMetrics;
use imadg_common::{ImcsConfig, ObjectId, RedoThreadId, ScnService, TenantId};
use imadg_imcs::{
    scalar, scan, CmpOp, ColdTier, Filter, ImcsStore, PopulationEngine, Predicate, SnapshotSource,
};
use imadg_redo::LogBuffer;
use imadg_storage::{ColumnType, DbaAllocator, Schema, Store, TableSpec, Value};
use imadg_txn::{InMemoryRegistry, LockTable, TxnIdService, TxnManager};
use proptest::prelude::*;

const OBJ: ObjectId = ObjectId(1);
const ALL_OPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

/// Monotonic tag so every proptest case gets its own tier directory.
static CASE: AtomicUsize = AtomicUsize::new(0);

struct Fixture {
    txm: TxnManager,
    store: Arc<Store>,
    scns: Arc<ScnService>,
    engine: PopulationEngine,
    dir: PathBuf,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Small blocks and 16-row IMCUs so a hundred rows span several cold
/// files; `repopulate_min_scn_gap` of zero lets pre-eviction DML be
/// absorbed by a rebuild, which is what makes the units evictable.
fn fixture() -> Fixture {
    let store = Arc::new(Store::new());
    let scns = Arc::new(ScnService::new());
    let txm = TxnManager::new(
        store.clone(),
        scns.clone(),
        Arc::new(LogBuffer::new(RedoThreadId(1))),
        Arc::new(TxnIdService::new()),
        Arc::new(LockTable::new()),
        Arc::new(InMemoryRegistry::new()),
        Arc::new(DbaAllocator::default()),
    );
    txm.create_table(TableSpec {
        id: OBJ,
        name: "t".into(),
        tenant: TenantId::DEFAULT,
        schema: Schema::of(&[
            ("id", ColumnType::Int),
            ("n1", ColumnType::Int),
            ("c1", ColumnType::Varchar),
        ]),
        key_ordinal: 0,
        rows_per_block: 8,
    })
    .unwrap();
    let engine = PopulationEngine::new(
        store.clone(),
        Arc::new(ImcsStore::new()),
        SnapshotSource::Primary(scns.clone()),
        ImcsConfig { imcu_max_rows: 16, repopulate_min_scn_gap: 0, ..Default::default() },
    )
    .unwrap();
    engine.enable(OBJ);
    let dir = std::env::temp_dir().join(format!(
        "imadg-coldprop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Fixture { txm, store, scns, engine, dir }
}

/// A tier engine over this fixture's directory at the given hot budget.
fn tier(f: &Fixture, budget: usize) -> ColdTier {
    ColdTier::new(
        f.store.clone(),
        f.engine.imcs().clone(),
        SnapshotSource::Primary(f.scns.clone()),
        ImcsConfig {
            imcu_max_rows: 16,
            repopulate_min_scn_gap: 0,
            memory_budget_bytes: budget,
            cold_tier_dir: Some(f.dir.to_string_lossy().into_owned()),
            ..Default::default()
        },
        f.dir.clone(),
        Arc::new(TierMetrics::default()),
    )
}

/// Apply one committed update per key (mod `rows`) and route the
/// invalidations, mirroring what the mining + flush pipeline does.
fn invalidate_keys(f: &Fixture, keys: &[i64], rows: i64) {
    if keys.is_empty() || rows == 0 {
        return;
    }
    let mut tx = f.txm.begin(TenantId::DEFAULT);
    let locs: Vec<_> = keys
        .iter()
        .map(|&k| {
            let key = k.rem_euclid(rows);
            f.txm.update_column_by_key(&mut tx, OBJ, key, "n1", Value::Int(key % 7)).unwrap()
        })
        .collect();
    let cscn = f.txm.commit(tx);
    for loc in locs {
        f.engine.imcs().invalidate(OBJ, loc, cscn);
    }
}

/// Insert the generated cells (id is the running key; n1 and c1 carry the
/// generated null patterns), populate, and absorb `pre_stale` DML so every
/// unit is clean and evictable.
fn seeded(cells: &[(Option<i64>, Option<String>)], pre_stale: &[i64]) -> Fixture {
    let f = fixture();
    let mut tx = f.txm.begin(TenantId::DEFAULT);
    for (k, (n1, c1)) in cells.iter().enumerate() {
        f.txm
            .insert(
                &mut tx,
                OBJ,
                vec![
                    Value::Int(k as i64),
                    n1.map(Value::Int).unwrap_or(Value::Null),
                    c1.as_deref().map(Value::str).unwrap_or(Value::Null),
                ],
            )
            .unwrap();
    }
    f.txm.commit(tx);
    f.engine.run_until_idle().unwrap();
    invalidate_keys(&f, pre_stale, cells.len() as i64);
    // Rebuild the stale units at the new snapshot: staleness drops to
    // zero, which is what makes them eviction candidates again.
    f.engine.run_until_idle().unwrap();
    f
}

/// Canonical row order. The scan contract fixes per-unit determinism, not
/// a global order — a pending unit bypasses in DBA order while a hot or
/// cold unit emits valid rows first and journaled fallbacks last — so
/// comparisons key on the unique `id` column. Values are still compared
/// bit-for-bit.
fn by_key(mut rows: Vec<imadg_storage::Row>) -> Vec<imadg_storage::Row> {
    rows.sort_by_key(|r| match *r.get(0) {
        Value::Int(i) => i,
        _ => i64::MAX,
    });
    rows
}

/// The always-hot oracle: the scalar engine at the same snapshot (cold
/// pending units bypass to the row store there, so it is correct whether
/// or not eviction has happened).
fn oracle(f: &Fixture, filt: &Filter, at: imadg_common::Scn) -> Vec<imadg_storage::Row> {
    by_key(scalar::scan_scalar(f.engine.imcs(), &f.store, OBJ, filt, at).unwrap().unwrap().rows)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Build → serialize → evict → scan-from-disk → recall → scan again:
    /// every step bit-identical to the always-hot scalar oracle, across
    /// encodings × null densities × SMU invalidation patterns applied on
    /// both sides of the eviction.
    #[test]
    fn cold_roundtrip_matches_hot_oracle(
        cells in proptest::collection::vec(
            (
                prop_oneof![
                    1 => Just(None),
                    4 => (-20i64..20).prop_map(Some),
                    1 => Just(Some(i64::MAX / 3)), // wide arm: forces plain i64
                ],
                prop_oneof![
                    1 => Just(None),
                    4 => "[a-c]{0,2}".prop_map(Some),
                ],
            ),
            24..120,
        ),
        pre_stale in proptest::collection::vec(0i64..120, 0..20),
        post_stale in proptest::collection::vec(0i64..120, 0..20),
        (op_idx, target) in (0usize..6, -25i64..25),
    ) {
        let f = seeded(&cells, &pre_stale);
        let rows = cells.len() as i64;

        // Evict everything the one-byte budget can push out.
        let evicted = tier(&f, 1).run_until_idle().unwrap().evicted;
        prop_assert!(evicted > 0, "nothing evicted from {} rows", rows);

        // Journaled DML against the now-cold placeholders.
        invalidate_keys(&f, &post_stale, rows);
        let at = f.scns.current();

        let schema = f.store.table(OBJ).unwrap().schema.read().clone();
        let filt =
            Filter::of(Predicate::new(&schema, "n1", ALL_OPS[op_idx], Value::Int(target)).unwrap());
        let all = Filter::all();

        // Cold scans: filtered and full, both against the scalar oracle.
        let want_filtered = oracle(&f, &filt, at);
        let got_filtered = scan(f.engine.imcs(), &f.store, OBJ, &filt, at).unwrap().unwrap();
        prop_assert_eq!(by_key(got_filtered.rows), want_filtered.clone(), "filtered cold scan diverged");
        let want_all = oracle(&f, &all, at);
        let got_all = scan(f.engine.imcs(), &f.store, OBJ, &all, at).unwrap().unwrap();
        prop_assert_eq!(by_key(got_all.rows), want_all, "full cold scan diverged");
        prop_assert_eq!(got_all.stats.cold_read_errors, 0usize);
        prop_assert!(
            got_all.stats.cold_read_units > 0,
            "full scan must read the evicted units"
        );

        // Recall: an unconstrained tier pulls every recently-read cold
        // unit hot again. The first pass may re-compact journal-heavy
        // units — swapping in fresh cold state with a drained read
        // counter — so touch every survivor with a scan and run again.
        let rt = tier(&f, 0);
        let mut recalled = rt.run_until_idle().unwrap().recalled;
        let _ = scan(f.engine.imcs(), &f.store, OBJ, &all, at).unwrap().unwrap();
        recalled += rt.run_until_idle().unwrap().recalled;
        prop_assert!(recalled > 0, "nothing recalled");
        let got = scan(f.engine.imcs(), &f.store, OBJ, &filt, at).unwrap().unwrap();
        let errors = got.stats.cold_read_errors;
        prop_assert_eq!(by_key(got.rows), want_filtered, "recalled scan diverged");
        prop_assert_eq!(errors, 0usize);
    }

    /// Torn files: truncating one cold file anywhere — header, pages,
    /// footer — must not panic and must not change any scan result; the
    /// unit silently degrades to the row-store bypass and the next tier
    /// pass quarantines the file.
    #[test]
    fn torn_cold_file_degrades_to_row_store(
        cells in proptest::collection::vec(
            ((-20i64..20).prop_map(Some), "[a-c]{0,2}".prop_map(Some)),
            32..96,
        ),
        victim_idx in 0usize..64,
        keep_pct in 1u64..98,
    ) {
        let f = seeded(&cells, &[]);
        let evicted = tier(&f, 1).run_until_idle().unwrap().evicted;
        prop_assert!(evicted > 0);

        // Tear one file at a case-chosen byte (footer, page, or header).
        let mut files: Vec<PathBuf> = std::fs::read_dir(&f.dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        files.sort();
        let victim = &files[victim_idx % files.len()];
        let bytes = std::fs::read(victim).unwrap();
        let keep = ((bytes.len() as u64 * keep_pct / 100) as usize).min(bytes.len() - 1);
        std::fs::write(victim, &bytes[..keep]).unwrap();

        let at = f.scns.current();
        let all = Filter::all();
        let want = oracle(&f, &all, at);
        let got = scan(f.engine.imcs(), &f.store, OBJ, &all, at).unwrap().unwrap();
        let errors = got.stats.cold_read_errors;
        prop_assert_eq!(by_key(got.rows), want.clone(), "torn file changed the scan result");
        prop_assert!(errors >= 1, "the torn unit must be counted");

        // The next tier pass quarantines the torn file instead of
        // recalling it; scans keep serving from the row store.
        tier(&f, 0).run_until_idle().unwrap();
        let again = scan(f.engine.imcs(), &f.store, OBJ, &all, at).unwrap().unwrap();
        prop_assert_eq!(by_key(again.rows), want, "post-quarantine scan diverged");
    }
}
