//! # imadg — Database In-Memory on an Active-Standby replica
//!
//! A from-scratch Rust reproduction of *"Oracle Database In-Memory on
//! Active Data Guard: Real-time Analytics on a Standby Database"*
//! (ICDE 2020): a physical standby database maintained purely by parallel
//! redo apply hosts a transactionally-consistent In-Memory Column Store,
//! so analytic queries offload to the standby at columnar speeds while the
//! primary runs OLTP.
//!
//! ## Quick start
//!
//! ```
//! use imadg::prelude::*;
//!
//! // One primary + one standby, DBIM-on-ADG enabled.
//! let cluster = AdgCluster::single().unwrap();
//! cluster
//!     .create_table(TableSpec {
//!         id: ObjectId(1),
//!         name: "sales".into(),
//!         tenant: TenantId::DEFAULT,
//!         schema: Schema::of(&[("id", ColumnType::Int), ("amount", ColumnType::Int)]),
//!         key_ordinal: 0,
//!         rows_per_block: 64,
//!     })
//!     .unwrap();
//! cluster.set_placement(ObjectId(1), Placement::StandbyOnly).unwrap();
//!
//! // OLTP on the primary.
//! let p = cluster.primary();
//! let mut tx = p.txm.begin(TenantId::DEFAULT);
//! for k in 0..100 {
//!     p.txm.insert(&mut tx, ObjectId(1), vec![Value::Int(k), Value::Int(k * 10)]).unwrap();
//! }
//! p.txm.commit(tx);
//!
//! // Replicate, apply, advance the QuerySCN, populate the column store.
//! cluster.sync().unwrap();
//!
//! // Analytics on the standby, served from the IMCS.
//! let schema = p.store.table(ObjectId(1)).unwrap().schema.read().clone();
//! let filter = Filter::of(Predicate::eq(&schema, "amount", Value::Int(500)).unwrap());
//! let out = cluster.standby().query(&QueryRequest::scan(ObjectId(1)).filter(filter)).unwrap();
//! assert!(out.used_imcs);
//! assert_eq!(out.count(), 1);
//! ```
//!
//! ## Measuring staleness
//!
//! Every commit record carries a birth stamp; the standby settles it
//! through per-stage residency histograms and one end-to-end
//! commit-to-queryable histogram. Queries opt into a per-phase profile
//! with [`QueryRequest::profile`](imadg_db::QueryRequest::profile), and
//! both node roles export Prometheus text / JSONL snapshots:
//!
//! ```
//! use imadg::prelude::*;
//!
//! let cluster = AdgCluster::single().unwrap();
//! cluster
//!     .create_table(TableSpec {
//!         id: ObjectId(1),
//!         name: "sales".into(),
//!         tenant: TenantId::DEFAULT,
//!         schema: Schema::of(&[("id", ColumnType::Int), ("amount", ColumnType::Int)]),
//!         key_ordinal: 0,
//!         rows_per_block: 64,
//!     })
//!     .unwrap();
//! cluster.set_placement(ObjectId(1), Placement::StandbyOnly).unwrap();
//! let p = cluster.primary();
//! for k in 0..50 {
//!     p.insert_one(ObjectId(1), TenantId::DEFAULT, vec![Value::Int(k), Value::Int(k * 10)])
//!         .unwrap();
//! }
//! cluster.sync().unwrap();
//!
//! // Commit-to-queryable staleness, measured on the standby.
//! let st = cluster.standby().metrics().staleness;
//! assert_eq!(st.e2e.count, 50);
//! assert!(st.e2e.p99() >= st.e2e.p50());
//! assert!(!st.slowest.is_empty());
//!
//! // Per-query phase breakdown.
//! let out = cluster
//!     .standby()
//!     .query(&QueryRequest::scan(ObjectId(1)).filter(Filter::all()).profile())
//!     .unwrap();
//! let prof = out.profile.unwrap();
//! assert!(prof.task_skew() >= 1.0);
//!
//! // Machine-readable export from a role-typed handle.
//! let text = cluster.node(NodeRole::Standby).metrics_prometheus();
//! assert!(text.contains("# TYPE imadg_staleness_e2e summary"));
//! let line = cluster.node(NodeRole::Primary).metrics_jsonl();
//! assert!(line.starts_with("{\"role\":\"primary\""));
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`imadg_common`] | SCNs, DBAs, ids, config, stats |
//! | [`imadg_storage`] | MVCC row store, blocks, buffer cache, apply path |
//! | [`imadg_redo`] | redo records, log buffers, shipping, log merger |
//! | [`imadg_txn`] | primary transaction manager, row locks |
//! | [`imadg_recovery`] | parallel redo apply, QuerySCN, quiesce |
//! | [`imadg_imcs`] | IMCUs, SMUs, population, scan engine |
//! | [`imadg_core`] | mining, IM-ADG journal/commit table, flush, RAC |
//! | [`imadg_db`] | primary/standby clusters, placement, queries |
//! | [`imadg_workload`] | the paper's OLTAP workload and reporting |

pub use imadg_common as common;
pub use imadg_core as core_adg;
pub use imadg_db as db;
pub use imadg_imcs as imcs;
pub use imadg_net as net;
pub use imadg_recovery as recovery;
pub use imadg_redo as redo;
pub use imadg_storage as storage;
pub use imadg_txn as txn;
pub use imadg_workload as workload;

/// The types most programs need.
pub mod prelude {
    pub use imadg_common::{
        Dba, Error, FaultPlan, ImcsConfig, InstanceId, LinkMode, ObjectId, RecoveryConfig, Result,
        Scn, SystemConfig, TenantId, TransportConfig, TxnId,
    };
    pub use imadg_db::{
        AdgCluster, ClusterConfig, CmpOp, ColumnDef, ColumnType, FallbackReason, Filter,
        MetricsSnapshot, Node, NodeBuilder, NodeRole, Placement, Predicate, PromotionReport,
        QueryOutput, QueryRequest, RouteDecision, RouteTarget, Row, Schema, StandbyCluster,
        StandbySelector, StandbySpec, TableSpec, Value,
    };
    pub use imadg_workload::{OltapConfig, OpMix, QueryId};
}
